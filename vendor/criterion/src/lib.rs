//! Offline stand-in for the `criterion` crate.
//!
//! Same API shape (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`), but a deliberately simple measurement loop: a short warm-up,
//! then repeated timed batches, reporting the best batch (the customary low-noise estimator for
//! throughput benchmarks). No statistics, plots or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let millis = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion { measurement_time: Duration::from_millis(millis) }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted for API compatibility; no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let measurement_time = self.measurement_time;
        run_benchmark(name, None, measurement_time, f);
        self
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter (for groups benchmarking one function over inputs).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation used to derive per-element / per-byte rates.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample count (accepted for API compatibility; the stub sizes batches by time).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the target measurement time for this group.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measurement_time = time;
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.label);
        run_benchmark(&name, self.throughput, self.criterion.measurement_time, |b| f(b, input));
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchIdOrName>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&name, self.throughput, self.criterion.measurement_time, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Accepts both `&str` and [`BenchmarkId`] for `bench_function`.
pub struct BenchIdOrName(String);

impl From<&str> for BenchIdOrName {
    fn from(value: &str) -> Self {
        BenchIdOrName(value.to_string())
    }
}

impl From<BenchmarkId> for BenchIdOrName {
    fn from(value: BenchmarkId) -> Self {
        BenchIdOrName(value.label)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs and times the workload.
pub struct Bencher {
    /// Best observed time per iteration, in nanoseconds.
    best_ns: f64,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, storing the best per-iteration time over several batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + calibration: run once to size the batches.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let target_batches = 10u32;
        let batch_iters = (self.measurement_time.as_nanos()
            / (once.as_nanos().max(1) * target_batches as u128))
            .clamp(1, 1_000_000) as u64;

        let deadline = Instant::now() + self.measurement_time;
        let mut best = f64::INFINITY;
        let mut batches = 0;
        while batches < target_batches && Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / batch_iters as f64;
            best = best.min(per_iter);
            batches += 1;
        }
        self.best_ns = best;
    }
}

fn run_benchmark<F>(name: &str, throughput: Option<Throughput>, measurement_time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { best_ns: f64::NAN, measurement_time };
    f(&mut bencher);
    let per_iter = bencher.best_ns;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / (per_iter * 1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / (per_iter * 1e-9))
        }
        None => String::new(),
    };
    println!("bench {name:<48} {:>12} ns/iter{rate}", format_ns(per_iter));
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns >= 1e6 {
        format!("{:.1}M", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}k", ns / 1e3)
    } else {
        format!("{ns:.0}")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        std::env::set_var("CRITERION_MEASUREMENT_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("f", 100), &100usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>());
        });
        group.bench_function("g", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        c.bench_function("solo", |b| b.iter(|| black_box(2 * 2)));
    }
}
