//! Offline stand-in for the `crossbeam-deque` crate.
//!
//! Same API shape (LIFO [`Worker`] deques, [`Stealer`] handles, a FIFO [`Injector`], the
//! three-state [`Steal`] result), implemented with short mutex-protected critical sections
//! instead of the lock-free Chase–Lev algorithm. `Steal::Retry` is still produced — when a
//! probe loses the race for the lock — so callers exercise the same retry protocol they would
//! against the real crate.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, TryLockError};

/// Result of a steal attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// A job was taken.
    Success(T),
    /// The queue was observed empty.
    Empty,
    /// The attempt lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    /// `true` for [`Steal::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// `true` for [`Steal::Empty`].
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// `true` for [`Steal::Retry`].
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// Returns the stolen job, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(job) => Some(job),
            _ => None,
        }
    }
}

/// How many jobs a batch steal moves at most (the real crate moves up to half the source).
const MAX_BATCH: usize = 32;

/// A worker-owned deque. The owner pushes and pops at the back (LIFO); stealers take from the
/// front (FIFO), like the real crate's `flavor::Lifo`.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates a LIFO worker deque.
    pub fn new_lifo() -> Self {
        Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// Creates a FIFO worker deque. The stub keeps a single flavor; pops come from the front.
    pub fn new_fifo() -> Self {
        Self::new_lifo()
    }

    /// Creates a [`Stealer`] handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { queue: Arc::clone(&self.queue) }
    }

    /// Pushes a job (owner side).
    pub fn push(&self, job: T) {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).push_back(job);
    }

    /// Pops the most recently pushed job (owner side).
    pub fn pop(&self) -> Option<T> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).pop_back()
    }

    /// `true` if the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
    }

    /// Number of queued jobs at the time of observation.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// A handle for stealing from another worker's deque.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

impl<T> Stealer<T> {
    /// Steals the oldest job.
    pub fn steal(&self) -> Steal<T> {
        steal_front(&self.queue)
    }

    /// Steals a batch of jobs into `dest` and pops one of them.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        steal_batch(&self.queue, &dest.queue)
    }

    /// `true` if the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
    }

    /// Number of queued jobs at the time of observation.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// A global FIFO injector queue for submissions from outside the pool.
pub struct Injector<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// Pushes a job at the back.
    pub fn push(&self, job: T) {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).push_back(job);
    }

    /// Pushes many jobs under a single lock acquisition.
    ///
    /// Extension over the real crate's API (whose lock-free `push` costs no lock at all); this
    /// keeps the mutex-based stub's bulk-submission cost comparable to the real thing.
    pub fn push_batch(&self, jobs: impl IntoIterator<Item = T>) {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).extend(jobs);
    }

    /// Steals the oldest job.
    pub fn steal(&self) -> Steal<T> {
        steal_front(&self.queue)
    }

    /// Steals a batch of jobs into `dest` and pops one of them.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        steal_batch(&self.queue, &dest.queue)
    }

    /// `true` if the injector was observed empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
    }

    /// Number of queued jobs at the time of observation.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

fn steal_front<T>(queue: &Mutex<VecDeque<T>>) -> Steal<T> {
    match queue.try_lock() {
        Ok(mut q) => match q.pop_front() {
            Some(job) => Steal::Success(job),
            None => Steal::Empty,
        },
        Err(TryLockError::WouldBlock) => Steal::Retry,
        Err(TryLockError::Poisoned(p)) => match p.into_inner().pop_front() {
            Some(job) => Steal::Success(job),
            None => Steal::Empty,
        },
    }
}

fn steal_batch<T>(source: &Mutex<VecDeque<T>>, dest: &Mutex<VecDeque<T>>) -> Steal<T> {
    let mut src = match source.try_lock() {
        Ok(q) => q,
        Err(TryLockError::WouldBlock) => return Steal::Retry,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
    };
    let first = match src.pop_front() {
        Some(job) => job,
        None => return Steal::Empty,
    };
    // Move up to half of the remainder (capped) into the destination deque.
    let extra = (src.len() / 2).min(MAX_BATCH);
    if extra > 0 {
        let mut dst = dest.lock().unwrap_or_else(|e| e.into_inner());
        for _ in 0..extra {
            if let Some(job) = src.pop_front() {
                dst.push_back(job);
            }
        }
    }
    Steal::Success(first)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_for_owner() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_oldest() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
    }

    #[test]
    fn injector_steal_batch_moves_jobs() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert!(!w.is_empty(), "batch steal must move extra jobs into the destination");
        let total: usize = w.len() + inj.len();
        assert_eq!(total, 9);
    }

    #[test]
    fn empty_queues_report_empty() {
        let inj: Injector<u8> = Injector::new();
        assert!(inj.steal().is_empty());
        let w: Worker<u8> = Worker::new_lifo();
        assert!(w.stealer().steal().is_empty());
    }
}
