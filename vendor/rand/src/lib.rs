//! Offline stand-in for the `rand` crate.
//!
//! Provides [`rngs::SmallRng`] (a splitmix64 generator — fast, full 64-bit period, more than
//! enough for tests, work-stealing victim selection and benchmark inputs), the [`SeedableRng`]
//! and [`Rng`] traits, and uniform range sampling for the integer types the workspace uses.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates a generator seeded from the system clock and a counter (stand-in for OS entropy).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self::seed_from_u64(clock ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[low, high)`. `high > low`.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high - low) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight modulo bias of the plain
                // fallback would be fine for our uses, but this is just as cheap.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low + hi as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample(self, rng: &mut dyn RngCore) -> u64 {
        let (low, high) = (*self.start(), *self.end());
        if low == 0 && high == u64::MAX {
            return rng.next_u64();
        }
        u64::sample_half_open(rng, low, high + 1)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                <$t>::sample_half_open(rng, *self.start(), *self.end() + 1)
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

/// Types producible by [`Rng::gen`].
pub trait Standard {
    /// Samples a value from the full domain (or `[0, 1)` for floats).
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// High-level convenience methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

/// A default generator seeded from the environment.
pub fn thread_rng() -> rngs::SmallRng {
    <rngs::SmallRng as SeedableRng>::from_entropy()
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let x: u32 = rng.gen_range(0..=3);
            assert!(x <= 3);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
