//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace uses: the [`Strategy`] trait with `prop_map`, range and
//! tuple strategies, [`collection::vec`], [`any`], `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`
//! and the [`proptest!`] test macro with optional `#![proptest_config(...)]`.
//!
//! Differences from the real crate: cases are generated from a fixed deterministic seed (override
//! with the `PROPTEST_SEED` environment variable) and failing cases are *not* shrunk — the
//! failure message reports the case number, seed and generated inputs instead.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-run configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Error produced by a failing `prop_assert*`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic RNG driving the generators.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// RNG for one test case. Deterministic unless `PROPTEST_SEED` overrides the base seed.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x5EED_CAFE_F00D_0001);
        // Mix in the test name so different tests see different streams.
        let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            name_hash = (name_hash ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { inner: SmallRng::seed_from_u64(base ^ name_hash ^ ((case as u64) << 32)) }
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound.max(1))
    }

    /// The next 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.inner.gen()
    }
}

/// A generation strategy for values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`, sampled uniformly.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = ((rng.bits() as u128 * span as u128) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let offset = ((rng.bits() as u128 * span as u128) >> 64) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.bits() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let len = self.len.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not panicking) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{} ({:?} != {:?})", format!($($fmt)*), l, r);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: both sides equal {:?}", l);
    }};
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ...) { body }` item becomes a
/// regular test that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                let mut case_inputs = ::std::string::String::new();
                $(
                    let value = $crate::Strategy::generate(&($strategy), &mut rng);
                    case_inputs.push_str(&format!(
                        "  {} = {:?}\n", stringify!($pat), &value
                    ));
                    let $pat = value;
                )+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    },
                ));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(error)) => {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n{}",
                            case + 1, config.cases, error, case_inputs
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest case {}/{} panicked; inputs:\n{}",
                            case + 1, config.cases, case_inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -4i64..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0usize..10, 0usize..10).prop_map(|(a, b)| (a.min(b), a.max(b)))) {
            prop_assert!(a <= b);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..255, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_picks_every_branch(vals in crate::collection::vec(prop_oneof![0usize..1, 5usize..6], 32..33)) {
            prop_assert!(vals.iter().all(|&v| v == 0 || v == 5));
        }
    }

    proptest! {
        // Not marked #[test]: generated, then driven by `failing_case_reports_inputs` below.
        fn always_fails(x in 0usize..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(always_fails);
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("x was"), "got: {message}");
        assert!(message.contains("inputs"), "got: {message}");
    }
}
