//! Model-aware `Mutex`, `Condvar`, and atomics, API-compatible with the subset of
//! `parking_lot` / `std::sync::atomic` the runtime uses.
//!
//! Blocking and wake-ups are simulated by the scheduler in [`crate::exec`]; the data itself
//! still lives behind a real `std::sync::Mutex` (never contended: only the virtual thread that
//! holds the *model* lock touches it), so even a scheduler bug cannot cause undefined
//! behaviour — the crate stays `forbid(unsafe_code)`.

use crate::exec::ctx;
use std::sync::{Mutex as OsMutex, MutexGuard as OsMutexGuard, TryLockError};

/// Lazily-registered per-execution identity of a primitive. Primitives are usually created
/// inside the model closure; re-registering on serial mismatch also makes reuse across
/// executions safe.
struct Registration {
    slot: OsMutex<Option<(u64, usize)>>,
}

impl Registration {
    const fn new() -> Self {
        Registration { slot: OsMutex::new(None) }
    }

    /// The id of this primitive within the *current* execution, allocating via `alloc` on
    /// first use (or first use within a new execution).
    fn id(&self, alloc: impl FnOnce() -> usize) -> usize {
        let serial = ctx().0.serial;
        let mut slot = self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match *slot {
            Some((s, id)) if s == serial => id,
            _ => {
                let id = alloc();
                *slot = Some((serial, id));
                id
            }
        }
    }
}

/// Takes the (never model-contended) data lock, recovering from poisoning left behind by an
/// aborted virtual thread unwinding while it held the data.
fn take_data<T>(data: &OsMutex<T>) -> OsMutexGuard<'_, T> {
    match data.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            panic!("model mutex granted but data lock contended (scheduler bug)")
        }
    }
}

/// A model mutex. `lock()` is a scheduling point and blocks (in model time) while another
/// virtual thread holds the lock.
pub struct Mutex<T> {
    reg: Registration,
    data: OsMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { reg: Registration::new(), data: OsMutex::new(value) }
    }

    fn id(&self) -> usize {
        self.reg.id(|| ctx().0.alloc_mutex())
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (exec, me) = ctx();
        let id = self.id();
        exec.op_lock(me, id);
        MutexGuard { mutex: self, inner: Some(take_data(&self.data)), id }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Guard for a [`Mutex`]; releases the model lock (a scheduling point) on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    /// `Some` except transiently inside `Condvar::wait`.
    inner: Option<OsMutexGuard<'a, T>>,
    id: usize,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed while waiting")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed while waiting")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // `inner` is None exactly while parked in `Condvar::wait` — the model lock is already
        // released then (an aborted waiter unwinding through `wait` must not double-unlock).
        if self.inner.take().is_some() {
            let (exec, me) = ctx();
            exec.op_unlock(me, self.id);
        }
    }
}

/// A model condition variable with `parking_lot`-style `wait(&mut MutexGuard)`.
pub struct Condvar {
    reg: Registration,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { reg: Registration::new() }
    }

    fn id(&self) -> usize {
        self.reg.id(|| ctx().0.alloc_condvar())
    }

    /// Atomically releases the guard's mutex and waits for a notification; the mutex is
    /// re-acquired before returning. Spurious wake-ups are not modelled: they only *add*
    /// wake-ups, so a lost-wake-up / deadlock property that holds without them holds with
    /// them, and the protocols under test re-check their predicates regardless.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let (exec, me) = ctx();
        let cvid = self.id();
        let mid = guard.id;
        guard.inner = None;
        // Model side: release mid, park on cvid, re-acquire mid before returning.
        exec.op_cv_wait(me, cvid, mid);
        guard.inner = Some(take_data(&guard.mutex.data));
    }

    pub fn notify_one(&self) {
        let (exec, me) = ctx();
        let cvid = self.id();
        exec.op_notify_one(me, cvid);
    }

    pub fn notify_all(&self) {
        let (exec, me) = ctx();
        let cvid = self.id();
        exec.op_notify_all(me, cvid);
    }
}

/// Model atomics: every access is a scheduling point (so interleavings around atomic
/// reads/writes are explored), backed by real `std` atomics for the data.
pub mod atomic {
    use crate::exec::ctx;
    pub use std::sync::atomic::Ordering;

    fn yield_point() {
        let (exec, me) = ctx();
        exec.op_yield(me);
    }

    macro_rules! atomic_impl {
        ($name:ident, $ty:ty) => {
            pub struct $name(std::sync::atomic::$name);

            impl $name {
                pub const fn new(v: $ty) -> Self {
                    $name(std::sync::atomic::$name::new(v))
                }
                pub fn load(&self, order: Ordering) -> $ty {
                    yield_point();
                    self.0.load(order)
                }
                pub fn store(&self, v: $ty, order: Ordering) {
                    yield_point();
                    self.0.store(v, order)
                }
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    yield_point();
                    self.0.fetch_add(v, order)
                }
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    yield_point();
                    self.0.fetch_sub(v, order)
                }
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    yield_point();
                    self.0.swap(v, order)
                }
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    yield_point();
                    self.0.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    atomic_impl!(AtomicUsize, usize);
    atomic_impl!(AtomicU64, u64);

    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            AtomicBool(std::sync::atomic::AtomicBool::new(v))
        }
        pub fn load(&self, order: Ordering) -> bool {
            yield_point();
            self.0.load(order)
        }
        pub fn store(&self, v: bool, order: Ordering) {
            yield_point();
            self.0.store(v, order)
        }
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            yield_point();
            self.0.swap(v, order)
        }
    }
}
