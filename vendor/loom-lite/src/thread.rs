//! Virtual-thread spawn/join, mirroring the `std::thread` API surface the models need.

use crate::exec::{ctx, set_ctx, ModelAbort};
use std::sync::{Arc, Mutex as OsMutex};

/// The joined virtual thread panicked (the panic itself was already recorded against the
/// execution), so it produced no return value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinError;

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("virtual thread panicked before producing a value")
    }
}

impl std::error::Error for JoinError {}

/// Handle to a spawned virtual thread; [`JoinHandle::join`] blocks (in model time) until it
/// finishes and yields its return value.
pub struct JoinHandle<T> {
    vtid: usize,
    result: Arc<OsMutex<Option<T>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

impl<T> JoinHandle<T> {
    pub fn join(mut self) -> Result<T, JoinError> {
        let (exec, me) = ctx();
        exec.op_join(me, self.vtid);
        // The virtual thread is finished; its OS thread is exiting (or has exited) and no
        // longer touches shared state, so the real join is safe and brief.
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        let slot =
            self.result.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        slot.ok_or(JoinError)
    }
}

/// Spawns a virtual thread running `f`. The new thread does not run until the scheduler picks
/// it; the spawn itself is a scheduling point in the parent.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (exec, me) = ctx();
    let vtid = exec.register_thread();
    let result = Arc::new(OsMutex::new(None));
    let result2 = Arc::clone(&result);
    let exec2 = Arc::clone(&exec);
    let os = std::thread::Builder::new()
        .name(format!("loom-lite-vt{vtid}"))
        .spawn(move || {
            set_ctx(Arc::clone(&exec2), vtid);
            exec2.wait_first_turn(vtid);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            match outcome {
                Ok(value) => {
                    *result2.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                        Some(value);
                    exec2.thread_finished(vtid, None);
                }
                Err(payload) => {
                    if payload.is::<ModelAbort>() {
                        // The execution was aborted (failure already recorded elsewhere);
                        // just let this OS thread exit.
                        return;
                    }
                    let message = panic_message(&payload);
                    exec2.thread_finished(vtid, Some(message));
                }
            }
        })
        .expect("failed to spawn model thread");
    // Let the scheduler consider running the child right away.
    exec.op_yield(me);
    JoinHandle { vtid, result, os: Some(os) }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A pure scheduling point, for models that want to widen the explored interleavings.
pub fn yield_now() {
    let (exec, me) = ctx();
    exec.op_yield(me);
}
