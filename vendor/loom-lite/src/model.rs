//! The model-checking driver: bounded-exhaustive DFS over schedules plus an optional
//! seeded-random tail.
//!
//! Exhaustive mode enumerates schedules depth-first over the choice tape: each run records the
//! branches it took; the next run replays the longest prefix that still has an untried
//! alternative and flips it. Preemption bounding (à la CHESS) keeps the space tractable:
//! schedules with more than `preemption_bound` *involuntary* context switches are pruned —
//! empirically, almost all concurrency bugs need only a couple of preemptions. The random tail
//! then samples unbounded schedules with a deterministic seeded PRNG for extra coverage.

use crate::exec::{ctx, set_ctx, Branch, Execution, Failure, ModelAbort, Rng};
use std::sync::{Arc, Once};

/// Suppress the default panic printout for [`ModelAbort`] unwinds (they are control flow, not
/// errors) while keeping it for everything else.
fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ModelAbort>() {
                return;
            }
            previous(info);
        }));
    });
}

/// Result of a [`Checker::check`] run.
#[derive(Debug)]
pub struct Report {
    /// Number of executions explored (exhaustive + random).
    pub executions: usize,
    /// Whether the exhaustive phase enumerated every schedule within the bounds (false when it
    /// stopped at `max_executions` or on a failure).
    pub exhausted: bool,
    /// The first failure found, with the schedule that produced it.
    pub failure: Option<(Vec<usize>, Failure)>,
}

impl Report {
    pub fn is_ok(&self) -> bool {
        self.failure.is_none()
    }

    pub fn found_deadlock(&self) -> bool {
        matches!(&self.failure, Some((_, f)) if f.is_deadlock())
    }

    pub fn found_panic(&self) -> bool {
        matches!(&self.failure, Some((_, Failure::Panic { .. })))
    }

    /// Panics with a reproduction schedule if any execution failed.
    pub fn assert_ok(&self) {
        if let Some((schedule, failure)) = &self.failure {
            panic!(
                "model check failed after {} executions: {:?}\nschedule: {:?}",
                self.executions, failure, schedule
            );
        }
    }
}

/// Configuration for a model check. The defaults (preemption bound 3, 20 000 executions,
/// 2 000 random runs) exhaust typical 2–3-thread protocols in well under a second.
pub struct Checker {
    preemption_bound: usize,
    max_executions: usize,
    random_runs: usize,
    seed: u64,
    max_steps: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            preemption_bound: 3,
            max_executions: 20_000,
            random_runs: 2_000,
            seed: 0x5EED_1E55_C0FF_EE00,
            max_steps: 10_000,
        }
    }
}

impl Checker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Maximum number of involuntary context switches per schedule in the exhaustive phase.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Cap on exhaustive executions (sets `exhausted: false` when hit).
    pub fn max_executions(mut self, max: usize) -> Self {
        self.max_executions = max;
        self
    }

    /// Number of seeded-random schedules to run after the exhaustive phase.
    pub fn random_runs(mut self, runs: usize) -> Self {
        self.random_runs = runs;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Per-execution step bound (livelock guard).
    pub fn max_steps(mut self, steps: usize) -> Self {
        self.max_steps = steps;
        self
    }

    /// Runs `f` once under the schedule given by `prefix` (+ optional random tail).
    fn run_once<F>(
        &self,
        f: &Arc<F>,
        prefix: Vec<usize>,
        rng: Option<Rng>,
    ) -> (Vec<Branch>, Option<Failure>)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let exec = Execution::new(prefix, rng, self.preemption_bound, self.max_steps);
        let root = exec.register_thread();
        debug_assert_eq!(root, 0);
        let exec2 = Arc::clone(&exec);
        let f2 = Arc::clone(f);
        let os = std::thread::Builder::new()
            .name("loom-lite-vt0".to_string())
            .spawn(move || {
                set_ctx(Arc::clone(&exec2), 0);
                // Thread 0 starts as `current`, so this returns immediately.
                exec2.wait_first_turn(0);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f2()));
                match outcome {
                    Ok(()) => exec2.thread_finished(0, None),
                    Err(payload) => {
                        if !payload.is::<ModelAbort>() {
                            let message = crate::thread::panic_message(&payload);
                            exec2.thread_finished(0, Some(message));
                        }
                    }
                }
            })
            .expect("failed to spawn model root thread");
        let (tape, failure) = exec.wait_done();
        // On clean completion every virtual thread has finished and its OS thread is exiting;
        // on failure they abort at their next scheduler interaction. Either way the root
        // OS thread terminates promptly.
        let _ = os.join();
        (tape, failure)
    }

    /// Model-checks `f`: exhaustive DFS within the bounds, then the random tail. Stops at the
    /// first failure.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_hook();
        let f = Arc::new(f);
        let mut executions = 0usize;
        let mut exhausted = false;

        // Exhaustive phase.
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            if executions >= self.max_executions {
                break;
            }
            let (tape, failure) = self.run_once(&f, prefix.clone(), None);
            executions += 1;
            if let Some(failure) = failure {
                let schedule = tape.iter().map(|b| b.picked).collect();
                return Report { executions, exhausted: false, failure: Some((schedule, failure)) };
            }
            match next_prefix(&tape) {
                Some(next) => prefix = next,
                None => {
                    exhausted = true;
                    break;
                }
            }
        }

        // Random tail.
        for run in 0..self.random_runs {
            let rng = Rng::new(self.seed.wrapping_add(run as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let (tape, failure) = self.run_once(&f, Vec::new(), Some(rng));
            executions += 1;
            if let Some(failure) = failure {
                let schedule = tape.iter().map(|b| b.picked).collect();
                return Report { executions, exhausted, failure: Some((schedule, failure)) };
            }
        }

        Report { executions, exhausted, failure: None }
    }
}

/// The DFS successor of a recorded tape: the longest prefix whose last branch still has an
/// untried alternative, with that branch advanced. `None` when the space is exhausted.
fn next_prefix(tape: &[Branch]) -> Option<Vec<usize>> {
    for i in (0..tape.len()).rev() {
        if tape[i].picked + 1 < tape[i].options {
            let mut prefix: Vec<usize> = tape[..i].iter().map(|b| b.picked).collect();
            prefix.push(tape[i].picked + 1);
            return Some(prefix);
        }
    }
    None
}

/// Convenience: model-check `f` with default bounds and panic on any failure.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::new().check(f).assert_ok();
}

/// Register an extra handle on the current execution (used by tests that need the serial).
#[doc(hidden)]
pub fn current_serial() -> u64 {
    ctx().0.serial
}
