//! # loom-lite — a minimal offline model checker for sync protocols
//!
//! A small, dependency-free stand-in for [`loom`](https://docs.rs/loom): tests write their
//! protocol against this crate's [`sync::Mutex`] / [`sync::Condvar`] / [`sync::atomic`] /
//! [`thread::spawn`] shims, and [`model`] (or a configured [`Checker`]) runs the closure under
//! *every* schedule within a preemption bound, then a seeded-random sample of the rest. Found
//! failures — panics, deadlocks (which is how lost wake-ups and sleep-forever states
//! manifest), step-limit livelocks — come with a replayable schedule.
//!
//! Unlike real loom there is no memory-order exploration (every atomic is sequentially
//! consistent at the model level) and no spurious-wakeup injection; what *is* explored is the
//! interleaving of lock/unlock, condvar wait/notify, atomic accesses, and spawn/join, which is
//! exactly the space where the runtime's epoch/sleeper and completion-gate protocols can lose
//! wake-ups.
//!
//! ```
//! use loom_lite::{model, sync::Mutex, thread};
//! use std::sync::Arc;
//!
//! model(|| {
//!     let m = Arc::new(Mutex::new(0u32));
//!     let m2 = Arc::clone(&m);
//!     let t = thread::spawn(move || *m2.lock() += 1);
//!     *m.lock() += 1;
//!     t.join().unwrap();
//!     assert_eq!(*m.lock(), 2);
//! });
//! ```

#![forbid(unsafe_code)]

mod exec;
pub mod model;
pub mod sync;
pub mod thread;

pub use exec::{Branch, Failure};
pub use model::{model, Checker, Report};

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{Condvar, Mutex};
    use super::{thread, Checker};
    use std::sync::Arc;

    #[test]
    fn counter_is_deterministic_under_mutex() {
        let report = Checker::new().check(|| {
            let m = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        let mut g = m.lock();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock(), 2);
        });
        assert!(report.is_ok(), "{:?}", report.failure);
        assert!(report.exhausted, "2-thread mutex counter should be exhaustible");
        assert!(report.executions > 1, "must explore more than one schedule");
    }

    /// The classic lost wake-up: the predicate lives in an atomic *outside* the mutex, so the
    /// waiter can check it, lose the race to the notify, and then park with nobody left to
    /// wake it. The checker must find the resulting deadlock.
    #[test]
    fn lost_wakeup_is_found_as_deadlock() {
        struct State {
            gate: Mutex<()>,
            cv: Condvar,
            done: AtomicBool,
        }
        let report = Checker::new().random_runs(0).check(|| {
            let s = Arc::new(State {
                gate: Mutex::new(()),
                cv: Condvar::new(),
                done: AtomicBool::new(false),
            });
            let s2 = Arc::clone(&s);
            let waiter = thread::spawn(move || {
                // BUG: the predicate is checked outside the mutex and not re-checked under
                // it — a notify landing between the load and the wait is lost forever.
                if !s2.done.load(Ordering::SeqCst) {
                    let mut g = s2.gate.lock();
                    s2.cv.wait(&mut g);
                }
            });
            s.done.store(true, Ordering::SeqCst);
            s.cv.notify_one();
            waiter.join().unwrap();
        });
        assert!(
            report.found_deadlock(),
            "checker failed to find the textbook lost wake-up: {report:?}"
        );
    }

    /// The corrected protocol — predicate set and notified under the mutex, waiter re-checks
    /// under the same mutex — must pass exhaustively.
    #[test]
    fn correct_handoff_passes_exhaustively() {
        let report = Checker::new().random_runs(50).check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let waiter = thread::spawn(move || {
                let (m, cv) = &*pair2;
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            });
            let (m, cv) = &*pair;
            {
                let mut g = m.lock();
                *g = true;
                cv.notify_one();
            }
            waiter.join().unwrap();
        });
        assert!(report.is_ok(), "{:?}", report.failure);
        assert!(report.exhausted);
    }

    /// An assertion that only fails under one specific interleaving must be found.
    #[test]
    fn racy_assertion_is_found() {
        let report = Checker::new().random_runs(0).check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || {
                a2.store(1, Ordering::SeqCst);
            });
            // Fails only when the child runs between spawn and this load.
            assert_eq!(a.load(Ordering::SeqCst), 0, "seeded race");
            t.join().unwrap();
        });
        assert!(report.found_panic(), "checker missed the racy assertion: {report:?}");
    }

    /// Replays must be deterministic: two identical checks explore the same schedule count.
    #[test]
    fn exploration_is_deterministic() {
        let run = || {
            Checker::new().random_runs(0).check(|| {
                let m = Arc::new(Mutex::new(0u32));
                let m2 = Arc::clone(&m);
                let t = thread::spawn(move || *m2.lock() += 1);
                *m.lock() += 1;
                t.join().unwrap();
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.exhausted, b.exhausted);
    }

    /// A classic AB/BA lock cycle must be reported as a deadlock.
    #[test]
    fn lock_cycle_is_found_as_deadlock() {
        let report = Checker::new().random_runs(0).check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_ga, _gb));
            t.join().unwrap();
        });
        assert!(report.found_deadlock(), "missed AB/BA deadlock: {report:?}");
    }
}
