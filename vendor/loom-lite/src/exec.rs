//! The controlled-execution engine: virtual threads, the choice tape, and the scheduler.
//!
//! One [`Execution`] is one run of the model closure under one schedule. Exactly one virtual
//! thread runs at a time (the one `Sched::current` names); every model operation — mutex
//! lock/unlock, condvar wait/notify, atomic access, spawn/join — calls into the scheduler at a
//! *yield point*, where the next thread to run is chosen. Choices are recorded on a tape of
//! [`Branch`]es; replaying a tape prefix reproduces the execution deterministically, which is
//! what the exhaustive DFS in [`crate::model`] builds on.
//!
//! Virtual threads are real OS threads parked on one shared condition variable; only the
//! scheduled thread makes progress, so user code needs no instrumentation beyond using the
//! [`crate::sync`] primitives. Data is additionally protected by real `std::sync` primitives
//! underneath, so even a buggy scheduler cannot introduce undefined behaviour.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsMutexGuard};

/// Panic payload used to unwind virtual threads when the execution is aborted (failure found).
/// Caught (and swallowed) by the virtual-thread wrapper.
pub(crate) struct ModelAbort;

/// Serial numbers for executions, so primitives created outside the current execution (or kept
/// across executions) re-register themselves instead of aliasing a stale id.
static EXECUTION_SERIAL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The execution this OS thread belongs to, and its virtual-thread id.
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The execution context of the calling virtual thread. Panics when called from outside a
/// model run — the model primitives only work under [`crate::model::Checker::check`].
pub(crate) fn ctx() -> (Arc<Execution>, usize) {
    CTX.with(|slot| {
        slot.borrow()
            .clone()
            .expect("loom-lite primitive used outside a model run (wrap the test in model())")
    })
}

pub(crate) fn set_ctx(exec: Arc<Execution>, vtid: usize) {
    CTX.with(|slot| *slot.borrow_mut() = Some((exec, vtid)));
}

/// One recorded scheduling choice: how many options were available and which one was taken.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Branch {
    pub options: usize,
    pub picked: usize,
}

/// Why a model run failed.
#[derive(Clone, Debug)]
pub enum Failure {
    /// No virtual thread was runnable while at least one had not finished: a lost wake-up /
    /// sleep-forever state (or a classic lock cycle).
    Deadlock { states: String },
    /// A virtual thread panicked (assertion failure inside the model).
    Panic { message: String },
    /// The execution exceeded the step bound (livelock guard).
    StepLimit,
}

impl Failure {
    pub fn is_deadlock(&self) -> bool {
        matches!(self, Failure::Deadlock { .. })
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    BlockedMutex(usize),
    WaitingCv(usize),
    BlockedJoin(usize),
    Finished,
}

struct MutexSt {
    held_by: Option<usize>,
}

struct CvSt {
    waiters: Vec<usize>,
}

/// Tiny deterministic PRNG (xorshift64*) for the seeded-random scheduling mode.
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

struct Sched {
    threads: Vec<ThreadState>,
    current: usize,
    mutexes: Vec<MutexSt>,
    condvars: Vec<CvSt>,
    /// Replay prefix: choices to take before falling back to the default strategy.
    prefix: Vec<usize>,
    /// The tape recorded by this run (replayed prefix included).
    tape: Vec<Branch>,
    /// Random strategy beyond the prefix (None = deterministic first-option DFS mode).
    rng: Option<Rng>,
    preemptions: usize,
    preemption_bound: usize,
    steps: usize,
    max_steps: usize,
    failure: Option<Failure>,
}

type Guard<'a> = OsMutexGuard<'a, Sched>;

/// One controlled execution. See the module docs.
pub(crate) struct Execution {
    pub(crate) serial: u64,
    sched: OsMutex<Sched>,
    cv: OsCondvar,
}

fn relock<'a, T>(
    r: Result<OsMutexGuard<'a, T>, std::sync::PoisonError<OsMutexGuard<'a, T>>>,
) -> OsMutexGuard<'a, T> {
    // A virtual thread aborting (ModelAbort) unwinds while holding the scheduler lock; recover
    // from the resulting poisoning — the scheduler state is still consistent (failure is set).
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Execution {
    pub(crate) fn new(
        prefix: Vec<usize>,
        rng: Option<Rng>,
        preemption_bound: usize,
        max_steps: usize,
    ) -> Arc<Self> {
        Arc::new(Execution {
            serial: EXECUTION_SERIAL.fetch_add(1, Ordering::Relaxed),
            sched: OsMutex::new(Sched {
                threads: Vec::new(),
                current: 0,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                prefix,
                tape: Vec::new(),
                rng,
                preemptions: 0,
                preemption_bound,
                steps: 0,
                max_steps,
                failure: None,
            }),
            cv: OsCondvar::new(),
        })
    }

    fn lock(&self) -> Guard<'_> {
        relock(self.sched.lock())
    }

    pub(crate) fn register_thread(&self) -> usize {
        let mut s = self.lock();
        s.threads.push(ThreadState::Runnable);
        s.threads.len() - 1
    }

    pub(crate) fn alloc_mutex(&self) -> usize {
        let mut s = self.lock();
        s.mutexes.push(MutexSt { held_by: None });
        s.mutexes.len() - 1
    }

    pub(crate) fn alloc_condvar(&self) -> usize {
        let mut s = self.lock();
        s.condvars.push(CvSt { waiters: Vec::new() });
        s.condvars.len() - 1
    }

    /// Takes the next choice among `options` alternatives: replayed from the prefix, random in
    /// random mode, or the first option (DFS default). Recorded on the tape either way.
    fn pick(&self, s: &mut Sched, options: usize) -> usize {
        debug_assert!(options >= 1);
        let step = s.tape.len();
        let picked = if step < s.prefix.len() {
            let p = s.prefix[step];
            assert!(p < options, "schedule replay diverged (picked {p} of {options})");
            p
        } else if let Some(rng) = &mut s.rng {
            rng.below(options)
        } else {
            0
        };
        s.tape.push(Branch { options, picked });
        picked
    }

    fn runnable(s: &Sched) -> Vec<usize> {
        (0..s.threads.len()).filter(|&t| s.threads[t] == ThreadState::Runnable).collect()
    }

    fn set_failure(&self, s: &mut Sched, failure: Failure) {
        if s.failure.is_none() {
            s.failure = Some(failure);
        }
        self.cv.notify_all();
    }

    fn abort(&self) -> ! {
        std::panic::panic_any(ModelAbort)
    }

    /// Blocks the calling OS thread until its virtual thread is scheduled (current + runnable),
    /// or aborts it if the execution failed.
    fn wait_for_turn<'a>(&'a self, mut s: Guard<'a>, me: usize) -> Guard<'a> {
        loop {
            if s.failure.is_some() {
                drop(s);
                self.abort();
            }
            if s.current == me && s.threads[me] == ThreadState::Runnable {
                return s;
            }
            s = relock(self.cv.wait(s));
        }
    }

    /// A scheduling point for a *runnable* thread: chooses who runs next (possibly someone
    /// else — a preemption), within the preemption bound.
    fn schedule_point<'a>(&'a self, mut s: Guard<'a>, me: usize) -> Guard<'a> {
        if s.failure.is_some() {
            drop(s);
            self.abort();
        }
        s.steps += 1;
        if s.steps > s.max_steps {
            self.set_failure(&mut s, Failure::StepLimit);
            drop(s);
            self.abort();
        }
        let options = if s.preemptions >= s.preemption_bound {
            vec![me]
        } else {
            Self::runnable(&s)
        };
        let idx = self.pick(&mut s, options.len());
        let chosen = options[idx];
        if chosen != me {
            s.preemptions += 1;
            s.current = chosen;
            self.cv.notify_all();
            s = self.wait_for_turn(s, me);
        }
        s
    }

    /// Hands the token to some runnable thread after the caller blocked or finished. Detects
    /// deadlock (nobody runnable, somebody unfinished).
    fn switch_away(&self, s: &mut Sched) {
        let enabled = Self::runnable(s);
        if enabled.is_empty() {
            if s.threads.iter().all(|t| *t == ThreadState::Finished) {
                // Normal end of the execution; wake the driver.
                self.cv.notify_all();
                return;
            }
            let states = s
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| format!("thread {i}: {t:?}"))
                .collect::<Vec<_>>()
                .join(", ");
            self.set_failure(s, Failure::Deadlock { states });
            return;
        }
        let idx = self.pick(s, enabled.len());
        s.current = enabled[idx];
        self.cv.notify_all();
    }

    /// Marks `me` blocked with `state`, hands the token away, and parks until rescheduled.
    fn block<'a>(&'a self, mut s: Guard<'a>, me: usize, state: ThreadState) -> Guard<'a> {
        s.threads[me] = state;
        self.switch_away(&mut s);
        self.wait_for_turn(s, me)
    }

    // ---- operations -------------------------------------------------------------------------

    /// A plain yield point (used after spawn, and for atomic operations).
    pub(crate) fn op_yield(&self, me: usize) {
        let s = self.lock();
        drop(self.schedule_point(s, me));
    }

    /// Acquires model mutex `mid` (with a scheduling point before the attempt).
    pub(crate) fn op_lock(&self, me: usize, mid: usize) {
        let mut s = self.lock();
        s = self.schedule_point(s, me);
        s = self.acquire(s, me, mid);
        drop(s);
    }

    fn acquire<'a>(&'a self, mut s: Guard<'a>, me: usize, mid: usize) -> Guard<'a> {
        loop {
            if s.failure.is_some() {
                drop(s);
                self.abort();
            }
            if s.mutexes[mid].held_by.is_none() {
                s.mutexes[mid].held_by = Some(me);
                return s;
            }
            s = self.block(s, me, ThreadState::BlockedMutex(mid));
        }
    }

    fn release_locked(&self, s: &mut Sched, me: usize, mid: usize) {
        debug_assert_eq!(s.mutexes[mid].held_by, Some(me), "unlock of a mutex not held");
        s.mutexes[mid].held_by = None;
        for t in 0..s.threads.len() {
            if s.threads[t] == ThreadState::BlockedMutex(mid) {
                s.threads[t] = ThreadState::Runnable;
            }
        }
    }

    pub(crate) fn op_unlock(&self, me: usize, mid: usize) {
        let mut s = self.lock();
        self.release_locked(&mut s, me, mid);
        if std::thread::panicking() {
            // Unwinding guard drop (abort in flight): release without yielding.
            self.cv.notify_all();
            return;
        }
        drop(self.schedule_point(s, me));
    }

    /// Condvar wait: atomically releases `mid` and parks on `cvid`; on wake, re-acquires `mid`
    /// before returning (both with full scheduling).
    pub(crate) fn op_cv_wait(&self, me: usize, cvid: usize, mid: usize) {
        let mut s = self.lock();
        // The wait call is a transition of its own: other threads may run between the
        // caller's last operation and the park (the release+park itself stays atomic). An
        // unlocked notify firing in this window is the textbook lost wake-up — without this
        // schedule point that interleaving would be unexplorable.
        s = self.schedule_point(s, me);
        debug_assert_eq!(s.mutexes[mid].held_by, Some(me), "cv wait without holding the mutex");
        self.release_locked(&mut s, me, mid);
        s.condvars[cvid].waiters.push(me);
        s = self.block(s, me, ThreadState::WaitingCv(cvid));
        // Notified: re-acquire the mutex.
        s = self.acquire(s, me, mid);
        drop(s);
    }

    /// Notify one waiter. *Which* waiter is a scheduling choice (real condvars pick
    /// arbitrarily). Notifying with no waiters is a no-op — exactly the semantics that lose
    /// wake-ups when a protocol notifies before the sleeper has parked.
    pub(crate) fn op_notify_one(&self, me: usize, cvid: usize) {
        let mut s = self.lock();
        s = self.schedule_point(s, me);
        if !s.condvars[cvid].waiters.is_empty() {
            let n = s.condvars[cvid].waiters.len();
            let idx = if n == 1 { 0 } else { self.pick(&mut s, n) };
            let woken = s.condvars[cvid].waiters.remove(idx);
            debug_assert_eq!(s.threads[woken], ThreadState::WaitingCv(cvid));
            s.threads[woken] = ThreadState::Runnable;
        }
        drop(s);
    }

    pub(crate) fn op_notify_all(&self, me: usize, cvid: usize) {
        let mut s = self.lock();
        s = self.schedule_point(s, me);
        let waiters = std::mem::take(&mut s.condvars[cvid].waiters);
        for woken in waiters {
            debug_assert_eq!(s.threads[woken], ThreadState::WaitingCv(cvid));
            s.threads[woken] = ThreadState::Runnable;
        }
        drop(s);
    }

    pub(crate) fn op_join(&self, me: usize, target: usize) {
        let mut s = self.lock();
        s = self.schedule_point(s, me);
        while s.threads[target] != ThreadState::Finished {
            s = self.block(s, me, ThreadState::BlockedJoin(target));
        }
        drop(s);
    }

    /// The first thing a freshly spawned virtual thread does: park until scheduled.
    pub(crate) fn wait_first_turn(&self, me: usize) {
        let s = self.lock();
        drop(self.wait_for_turn(s, me));
    }

    /// The last thing a virtual thread does (its user code has returned or panicked).
    pub(crate) fn thread_finished(&self, me: usize, panic: Option<String>) {
        let mut s = self.lock();
        if let Some(message) = panic {
            self.set_failure(&mut s, Failure::Panic { message });
            return;
        }
        s.threads[me] = ThreadState::Finished;
        for t in 0..s.threads.len() {
            if s.threads[t] == ThreadState::BlockedJoin(me) {
                s.threads[t] = ThreadState::Runnable;
            }
        }
        self.switch_away(&mut s);
    }

    /// Driver side: blocks until the run ends (all threads finished, or a failure), then
    /// returns the tape and the failure, if any.
    pub(crate) fn wait_done(&self) -> (Vec<Branch>, Option<Failure>) {
        let mut s = self.lock();
        loop {
            let done =
                s.failure.is_some() || s.threads.iter().all(|t| *t == ThreadState::Finished);
            if done {
                return (s.tape.clone(), s.failure.clone());
            }
            s = relock(self.cv.wait(s));
        }
    }
}
