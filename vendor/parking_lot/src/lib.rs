//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements the `Mutex`/`Condvar` subset the workspace uses on top of `std::sync`, with the
//! parking_lot API shape: no lock poisoning (a poisoned std lock is recovered transparently) and
//! `Condvar::wait*` taking `&mut MutexGuard` instead of consuming the guard.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { guard: Some(recover_lock(self.inner.lock())) }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { guard: Some(p.into_inner()) })
            }
        }
    }

    /// Mutable access without locking (requires exclusive access to the mutex itself).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

fn recover<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn recover_lock<G>(result: std::sync::LockResult<G>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` so [`Condvar`] can temporarily take it out while
/// waiting (std's condvar consumes and returns guards; parking_lot's mutates them in place).
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard taken during condvar wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard taken during condvar wait")
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified. The guard is unlocked while waiting and re-locked before return.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard taken during condvar wait");
        let std_guard = recover_lock(self.inner.wait(std_guard));
        guard.guard = Some(std_guard);
    }

    /// Blocks until notified or until `timeout` elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard taken during condvar wait");
        let (std_guard, result) = recover_lock(self.inner.wait_timeout(std_guard, timeout));
        guard.guard = Some(std_guard);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    /// Blocks until notified or until `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter. Returns `true` if a thread may have been woken.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        handle.join().unwrap();
    }
}
