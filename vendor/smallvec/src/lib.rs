//! Offline stand-in for the `smallvec` crate.
//!
//! [`SmallVec<[T; N]>`] stores up to `N` elements inline (no heap allocation) and spills to a
//! `Vec<T>` beyond that. The workspace uses it for dependency-edge lists, which are 1–2 entries
//! in the overwhelmingly common case; keeping them inline removes an allocation per edge from
//! the task-registration hot path.
//!
//! The inline buffer is `[Option<T>; N]` rather than `MaybeUninit` — safe code, same allocation
//! behaviour, a niche/discriminant of overhead per slot that the short lengths make irrelevant.

use std::fmt;

/// Backing-array marker trait: `SmallVec<[T; N]>` mirrors the real crate's type syntax.
pub trait Array {
    /// Element type.
    type Item;
    /// Inline capacity.
    const CAPACITY: usize;
    /// The inline buffer type (`[Option<Item>; N]`).
    type OptBuf: AsRef<[Option<Self::Item>]> + AsMut<[Option<Self::Item>]>;
    /// An all-`None` inline buffer.
    fn empty_buf() -> Self::OptBuf;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    const CAPACITY: usize = N;
    type OptBuf = [Option<T>; N];
    fn empty_buf() -> Self::OptBuf {
        std::array::from_fn(|_| None)
    }
}

enum Repr<A: Array> {
    Inline { buf: A::OptBuf, len: usize },
    Heap(Vec<A::Item>),
}

/// A vector with inline capacity `A::CAPACITY`.
pub struct SmallVec<A: Array> {
    repr: Repr<A>,
}

impl<A: Array> SmallVec<A> {
    /// Creates an empty vector (no heap allocation until the inline capacity is exceeded).
    pub fn new() -> Self {
        SmallVec { repr: Repr::Inline { buf: A::empty_buf(), len: 0 } }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len,
            Repr::Heap(v) => v.len(),
        }
    }

    /// `true` if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` while the elements still fit the inline buffer.
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// Appends an element, spilling to the heap when the inline capacity is exceeded.
    pub fn push(&mut self, value: A::Item) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                if *len < A::CAPACITY {
                    buf.as_mut()[*len] = Some(value);
                    *len += 1;
                } else {
                    let mut heap: Vec<A::Item> = Vec::with_capacity(*len + 1);
                    for slot in buf.as_mut().iter_mut() {
                        if let Some(item) = slot.take() {
                            heap.push(item);
                        }
                    }
                    heap.push(value);
                    self.repr = Repr::Heap(heap);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> Iter<'_, A> {
        Iter { vec: self, pos: 0 }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.repr = Repr::Inline { buf: A::empty_buf(), len: 0 };
    }
}

impl<A: Array> std::ops::Index<usize> for SmallVec<A> {
    type Output = A::Item;

    fn index(&self, index: usize) -> &A::Item {
        match &self.repr {
            Repr::Inline { buf, len } => {
                assert!(index < *len, "index {index} out of bounds (len {len})");
                buf.as_ref()[index].as_ref().expect("inline slot within len is filled")
            }
            Repr::Heap(v) => &v[index],
        }
    }
}

impl<A: Array> std::ops::IndexMut<usize> for SmallVec<A> {
    fn index_mut(&mut self, index: usize) -> &mut A::Item {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                assert!(index < *len, "index {index} out of bounds (len {len})");
                buf.as_mut()[index].as_mut().expect("inline slot within len is filled")
            }
            Repr::Heap(v) => &mut v[index],
        }
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        let mut out = SmallVec::new();
        for item in self.iter() {
            out.push(item.clone());
        }
        out
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        let mut out = SmallVec::new();
        for item in iter {
            out.push(item);
        }
        out
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

/// Borrowing iterator over a [`SmallVec`].
pub struct Iter<'a, A: Array> {
    vec: &'a SmallVec<A>,
    pos: usize,
}

impl<'a, A: Array> Iterator for Iter<'a, A> {
    type Item = &'a A::Item;

    fn next(&mut self) -> Option<&'a A::Item> {
        let item = match &self.vec.repr {
            Repr::Inline { buf, len } => {
                if self.pos < *len {
                    buf.as_ref()[self.pos].as_ref()
                } else {
                    None
                }
            }
            Repr::Heap(v) => v.get(self.pos),
        };
        if item.is_some() {
            self.pos += 1;
        }
        item
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = Iter<'a, A>;
    fn into_iter(self) -> Iter<'a, A> {
        self.iter()
    }
}

/// Owning iterator over a [`SmallVec`].
pub struct IntoIter<A: Array> {
    inner: std::vec::IntoIter<A::Item>,
}

impl<A: Array> Iterator for IntoIter<A> {
    type Item = A::Item;
    fn next(&mut self) -> Option<A::Item> {
        self.inner.next()
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = IntoIter<A>;

    fn into_iter(self) -> IntoIter<A> {
        let items: Vec<A::Item> = match self.repr {
            Repr::Inline { mut buf, len } => {
                buf.as_mut().iter_mut().take(len).filter_map(Option::take).collect()
            }
            Repr::Heap(v) => v,
        };
        IntoIter { inner: items.into_iter() }
    }
}

/// `smallvec![a, b, c]` constructor macro (subset of the real crate's).
#[macro_export]
macro_rules! smallvec {
    () => { $crate::SmallVec::new() };
    ($($item:expr),+ $(,)?) => {{
        let mut v = $crate::SmallVec::new();
        $(v.push($item);)+
        v
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_then_spill() {
        let mut v: SmallVec<[u32; 2]> = SmallVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        assert!(!v.spilled());
        v.push(3);
        assert!(v.spilled());
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn macro_and_traits() {
        let v: SmallVec<[u8; 4]> = smallvec![9, 8];
        assert_eq!(v.len(), 2);
        let doubled: SmallVec<[u8; 4]> = v.iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.iter().copied().collect::<Vec<_>>(), vec![18, 16]);
        let cloned = doubled.clone();
        assert_eq!(format!("{cloned:?}"), "[18, 16]");
    }

    #[test]
    fn non_copy_items() {
        let mut v: SmallVec<[String; 1]> = SmallVec::new();
        v.push("a".to_string());
        v.push("b".to_string());
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec!["a".to_string(), "b".to_string()]);
    }
}
