//! The example code of the paper (Listings 1–3) expressed with the `weakdep` API.
//!
//! The program builds the four-task example of the paper's Section III in three styles and, for
//! each, reports when every task *became ready* relative to the finish time of the tasks it
//! conceptually depends on:
//!
//! 1. `nested-strong` — Listing 1: nesting + strong dependencies + `taskwait` (OpenMP 4.5);
//! 2. `flat`          — Listing 1 with the outer level removed (Figure 1b);
//! 3. `nested-weak`   — Listing 3: weak dependencies + `weakwait` (the paper's proposal).
//!
//! The point demonstrated: in style 3 the inner task `T2.1` starts as soon as `T1.1` has
//! finished (as in the flat style), while style 1 cannot start `T2.1` before *all* of `T1`
//! finished — yet style 3 keeps the top-down nested structure of style 1.
//!
//! Run with:
//! ```text
//! cargo run --release --example paper_listings
//! ```

use std::sync::Arc;
use std::time::Duration;

use weakdep::{Runtime, RuntimeConfig, SharedSlice};
use weakdep_trace::TraceCollector;

/// Milliseconds of simulated work inside every leaf task.
const WORK_MS: u64 = 20;

fn busy(label: &str) {
    // Simulated computation; long enough that scheduling effects are visible in the trace.
    std::thread::sleep(Duration::from_millis(WORK_MS));
    let _ = label;
}

fn report(style: &str, trace: &TraceCollector) {
    let events = trace.events();
    let find_end = |label: &str| {
        events.iter().find(|e| e.label == label).map(|e| e.end_ns).unwrap_or(0)
    };
    let find_start = |label: &str| {
        events.iter().find(|e| e.label == label).map(|e| e.start_ns).unwrap_or(0)
    };
    let t11_end = find_end("T1.1");
    let t12_end = find_end("T1.2");
    let t21_start = find_start("T2.1");
    println!("--- {style} ---");
    println!(
        "T2.1 started {:.1} ms after T1.1 finished, {:.1} ms {} T1.2 finished",
        (t21_start as f64 - t11_end as f64) / 1e6,
        ((t21_start as f64 - t12_end as f64) / 1e6).abs(),
        if t21_start >= t12_end { "after" } else { "BEFORE" },
    );
}

fn main() {
    let trace = TraceCollector::shared();
    let rt = Runtime::new(RuntimeConfig::new().workers(4).observer(trace.clone()));

    // One byte per variable of the paper's example: a, b, z, c, d, e, f.
    let vars = SharedSlice::<u8>::new(7);
    let (a, b, z, c, d, e, f) = (0usize, 1, 2, 3, 4, 5, 6);

    // ---------------------------------------------------------------- Listing 1: nested-strong
    trace.reset();
    {
        let v = vars.clone();
        rt.run(move |ctx| {
            // T1
            let vv = v.clone();
            ctx.task().inout(r_of(&v, a)).inout(r_of(&v, b)).label("T1").spawn(move |t| {
                busy("T1");
                vv.task_helper(t, a, "T1.1");
                vv.task_helper(t, b, "T1.2");
                t.taskwait();
            });
            // T2 (strong deps on a, b even though only its children need them)
            let vv = v.clone();
            ctx.task()
                .input(r_of(&v, a))
                .input(r_of(&v, b))
                .output(r_of(&v, z))
                .output(r_of(&v, c))
                .output(r_of(&v, d))
                .label("T2")
                .spawn(move |t| {
                    busy("T2");
                    vv.task_reader_writer(t, a, c, "T2.1");
                    vv.task_reader_writer(t, b, d, "T2.2");
                    t.taskwait();
                });
            // T4
            let vv = v.clone();
            ctx.task()
                .input(r_of(&v, c))
                .input(r_of(&v, d))
                .label("T4")
                .spawn(move |t| {
                    vv.task_reader(t, c, "T4.1");
                    vv.task_reader(t, d, "T4.2");
                    t.taskwait();
                });
            let _ = (e, f, z);
        });
    }
    report("nested-strong (Listing 1)", &trace);

    // ---------------------------------------------------------------- Figure 1b: flat
    trace.reset();
    {
        let v = vars.clone();
        rt.run(move |ctx| {
            v.task_helper(ctx, a, "T1.1");
            v.task_helper(ctx, b, "T1.2");
            v.task_reader_writer(ctx, a, c, "T2.1");
            v.task_reader_writer(ctx, b, d, "T2.2");
            v.task_reader(ctx, c, "T4.1");
            v.task_reader(ctx, d, "T4.2");
        });
    }
    report("flat (Figure 1b)", &trace);

    // ---------------------------------------------------------------- Listing 3: nested-weak
    trace.reset();
    {
        let v = vars.clone();
        rt.run(move |ctx| {
            let vv = v.clone();
            ctx.task()
                .inout(r_of(&v, a))
                .inout(r_of(&v, b))
                .weakwait()
                .label("T1")
                .spawn(move |t| {
                    busy("T1");
                    vv.task_helper(t, a, "T1.1");
                    vv.task_helper(t, b, "T1.2");
                });
            let vv = v.clone();
            ctx.task()
                .weak_input(r_of(&v, a))
                .weak_input(r_of(&v, b))
                .output(r_of(&v, z))
                .weak_output(r_of(&v, c))
                .weak_output(r_of(&v, d))
                .weakwait()
                .label("T2")
                .spawn(move |t| {
                    busy("T2");
                    vv.task_reader_writer(t, a, c, "T2.1");
                    vv.task_reader_writer(t, b, d, "T2.2");
                });
            let vv = v.clone();
            ctx.task()
                .weak_input(r_of(&v, c))
                .weak_input(r_of(&v, d))
                .weakwait()
                .label("T4")
                .spawn(move |t| {
                    vv.task_reader(t, c, "T4.1");
                    vv.task_reader(t, d, "T4.2");
                });
        });
    }
    report("nested-weak (Listing 3)", &trace);

    let _ = Arc::strong_count(&trace);
}

fn r_of(v: &SharedSlice<u8>, i: usize) -> weakdep::Region {
    v.region(i..i + 1)
}

/// Small helpers so the three styles stay readable.
trait ListingTasks {
    fn task_helper(&self, ctx: &weakdep::TaskCtx<'_>, var: usize, label: &'static str);
    fn task_reader_writer(
        &self,
        ctx: &weakdep::TaskCtx<'_>,
        input: usize,
        output: usize,
        label: &'static str,
    );
    fn task_reader(&self, ctx: &weakdep::TaskCtx<'_>, var: usize, label: &'static str);
}

impl ListingTasks for SharedSlice<u8> {
    /// `var += ...` (the paper's T1.x tasks).
    fn task_helper(&self, ctx: &weakdep::TaskCtx<'_>, var: usize, label: &'static str) {
        let v = self.clone();
        ctx.task().inout(self.region(var..var + 1)).label(label).spawn(move |t| {
            busy(label);
            v.write(t, var..var + 1)[0] = v.read(t, var..var + 1)[0].wrapping_add(1);
        });
    }

    /// `output = ... input ...` (the paper's T2.x / T3.x tasks).
    fn task_reader_writer(
        &self,
        ctx: &weakdep::TaskCtx<'_>,
        input: usize,
        output: usize,
        label: &'static str,
    ) {
        let v = self.clone();
        ctx.task()
            .input(self.region(input..input + 1))
            .output(self.region(output..output + 1))
            .label(label)
            .spawn(move |t| {
                busy(label);
                let value = v.read(t, input..input + 1)[0];
                v.write(t, output..output + 1)[0] = value.wrapping_mul(3);
            });
    }

    /// `... = ... var ...` (the paper's T4.x tasks).
    fn task_reader(&self, ctx: &weakdep::TaskCtx<'_>, var: usize, label: &'static str) {
        let v = self.clone();
        ctx.task().input(self.region(var..var + 1)).label(label).spawn(move |t| {
            busy(label);
            std::hint::black_box(v.read(t, var..var + 1)[0]);
        });
    }
}
