//! Quickstart: a blocked AXPY (`y ← α·x + y`) written top-down with task nesting, weak
//! dependencies and `weakwait`, exactly like Listing 5 of the paper.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use weakdep::{Runtime, RuntimeConfig, SharedSlice};

fn main() {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let rt = Runtime::new(RuntimeConfig::new().workers(workers));
    println!("running on {workers} workers");

    let n = 1 << 20;
    let block = 1 << 14;
    let alpha = 2.0;

    let x = SharedSlice::<f64>::filled(n, 1.0);
    let y = SharedSlice::<f64>::filled(n, 3.0);

    // Two chained axpy calls over the same vectors: the blocks of the second call depend on the
    // blocks of the first call, and thanks to the weak dependencies the runtime sees those
    // dependencies at block granularity even though each call is wrapped in an outer task.
    let (xr, yr) = (x.clone(), y.clone());
    rt.run(move |ctx| {
        for call in 0..2 {
            let (xo, yo) = (xr.clone(), yr.clone());
            ctx.task()
                .weak_input(xr.region(0..n))
                .weak_inout(yr.region(0..n))
                .weakwait()
                .label(if call == 0 { "axpy-call-0" } else { "axpy-call-1" })
                .spawn(move |outer| {
                    for start in (0..n).step_by(block) {
                        let end = (start + block).min(n);
                        let (xi, yi) = (xo.clone(), yo.clone());
                        outer
                            .task()
                            .input(xo.region(start..end))
                            .inout(yo.region(start..end))
                            .label("axpy-block")
                            .spawn(move |t| {
                                let xs = xi.read(t, start..end);
                                let ys = yi.write(t, start..end);
                                for (yv, xv) in ys.iter_mut().zip(xs) {
                                    *yv += alpha * *xv;
                                }
                            });
                    }
                });
        }
    });

    // y started at 3 and received 2·1 twice.
    let result = y.snapshot();
    assert!(result.iter().all(|&v| (v - 7.0).abs() < 1e-12));
    println!("done: y[0] = {} (expected 7)", result[0]);

    let stats = rt.stats();
    println!(
        "tasks executed: {}, dependency edges: {}, cross-domain (weak) links: {}, successor-slot dispatches: {}",
        stats.tasks_executed,
        stats.engine.release_edges,
        stats.engine.satisfaction_edges,
        stats.successor_slot_hits
    );
}
