//! Quicksort followed by a prefix sum, with an ASCII execution timeline for the weak and strong
//! variants — a miniature, interactive version of Figure 7.
//!
//! Run with:
//! ```text
//! cargo run --release --example sort_timeline [-- <elements> <base-case>]
//! ```

use weakdep::{Runtime, RuntimeConfig};
use weakdep_kernels::sort_scan::{self, SortScanConfig, SortScanVariant};
use weakdep_trace::{render_timeline, TimelineOptions, TraceCollector};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let n = args.first().copied().unwrap_or(1 << 19);
    let ts = args.get(1).copied().unwrap_or(1 << 13);

    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let trace = TraceCollector::shared();
    let rt = Runtime::new(RuntimeConfig::new().workers(workers).observer(trace.clone()));
    let cfg = SortScanConfig { n, ts, seed: 20170529 };

    println!("quicksort + prefix sum over {n} elements, base case {ts}, {workers} workers\n");
    for variant in SortScanVariant::all() {
        trace.reset();
        let (run, result) = sort_scan::run(&rt, variant, &cfg);
        assert!(sort_scan::verify(&cfg, &result), "wrong result for {}", variant.name());
        println!("=== {} ({:.2} ms) ===", variant.name(), run.elapsed.as_secs_f64() * 1e3);
        print!(
            "{}",
            render_timeline(&trace.events(), &TimelineOptions { width: 100, legend: true })
        );
        println!();
    }
    println!(
        "Compare the two timelines: with weakwait + weak dependencies the prefix-sum tasks start\n\
         while quicksort tasks are still running; with taskwait + regular dependencies the scan\n\
         only starts after the whole sort has finished (Figure 7 of the paper)."
    );
}
