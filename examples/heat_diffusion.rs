//! Gauss-Seidel heat diffusion (the paper's §VIII-B workload) run through the public API, with
//! an effective-parallelism report for each variant — a miniature version of Figure 6.
//!
//! Run with:
//! ```text
//! cargo run --release --example heat_diffusion [-- <grid-side> <block-side> <iterations>]
//! ```

use weakdep::{Runtime, RuntimeConfig};
use weakdep_cachesim::{CacheConfig, CacheSimObserver};
use weakdep_kernels::gauss_seidel::{self, GsConfig, GsVariant};
use weakdep_trace::TraceCollector;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let side = args.first().copied().unwrap_or(512);
    let ts = args.get(1).copied().unwrap_or(64);
    let iterations = args.get(2).copied().unwrap_or(24);
    assert!(side % ts == 0, "the block side must divide the grid side");

    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let trace = TraceCollector::shared();
    let cachesim = CacheSimObserver::shared(CacheConfig::default());
    let rt = Runtime::new(
        RuntimeConfig::new()
            .workers(workers)
            .observer(trace.clone())
            .observer(cachesim.clone()),
    );

    let cfg = GsConfig { blocks: side / ts, ts, iterations };
    println!(
        "heat diffusion: {side}x{side} grid, {ts}x{ts} blocks, {iterations} iterations, {workers} workers\n"
    );
    println!(
        "{:<20} {:>10} {:>14} {:>14} {:>12}",
        "variant", "GFlop/s", "parallelism", "L2 miss ratio", "verified"
    );

    for variant in GsVariant::all() {
        trace.reset();
        cachesim.reset();
        let (run, result) = gauss_seidel::run(&rt, variant, &cfg);
        let summary = weakdep_trace::summarize(&trace.events());
        let ok = gauss_seidel::verify(&cfg, &result);
        println!(
            "{:<20} {:>10.3} {:>14.2} {:>14.3} {:>12}",
            variant.name(),
            run.gops(),
            summary.effective_parallelism,
            cachesim.miss_ratio(),
            if ok { "yes" } else { "NO" }
        );
    }
}
