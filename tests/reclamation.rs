//! Steady-state reclamation tests for the generation-based id-retirement subsystem.
//!
//! A long-lived runtime must not grow per-task state with the *total* number of tasks ever
//! spawned: once a task deeply completes and its last bookkeeping is reclaimed, its task-table
//! slot and pending-slab capacity are recycled, and the stale `TaskId` is detected (defined
//! [`weakdep::StaleTaskId`] error) rather than aliased onto the younger task reusing the slot.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use weakdep::{Runtime, SharedSlice, TaskSpec};

/// Multi-worker soak: waves of dependent tasks through ONE runtime. Task-table and pending-slab
/// capacity must plateau at the live-task high-water mark (not track total tasks), while the
/// engine's books stay balanced (`registered == deeply_completed == retired`).
#[test]
fn soak_capacity_plateaus_while_books_balance() {
    let workers = 4;
    let cells = 64usize;
    let (waves, wave_size) = if cfg!(debug_assertions) { (24, 1_000) } else { (80, 2_500) };
    let rt = Runtime::with_workers(workers);
    let data = SharedSlice::<u64>::new(cells);
    let executed = Arc::new(AtomicUsize::new(0));

    let mut max_table = 0usize;
    let mut max_pending = 0usize;
    let mut first_table = 0usize;
    for wave in 0..waves {
        let d = data.clone();
        let ex = Arc::clone(&executed);
        rt.run(move |ctx| {
            let specs: Vec<TaskSpec> = (0..wave_size)
                .map(|i| {
                    let cell = i % cells;
                    let d2 = d.clone();
                    let ex2 = Arc::clone(&ex);
                    ctx.task().inout(d.region(cell..cell + 1)).label("soak").stage(move |t| {
                        d2.write(t, cell..cell + 1)[0] += 1;
                        ex2.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            ctx.spawn_batch(specs);
        });
        let cap = rt.capacity();
        if wave == 0 {
            first_table = cap.task_table_slots;
        }
        max_table = max_table.max(cap.task_table_slots);
        max_pending = max_pending.max(cap.pending_slots);
    }

    let total_tasks = waves * wave_size;
    assert_eq!(executed.load(Ordering::Relaxed), total_tasks);
    let stats = rt.stats();
    assert_eq!(
        stats.engine.tasks_registered, stats.engine.tasks_deeply_completed,
        "every registered task (roots included) must deeply complete"
    );
    assert_eq!(
        stats.engine.tasks_registered, stats.engine.tasks_retired,
        "every deeply completed task must be retired"
    );
    assert_eq!(stats.engine.tasks_registered, total_tasks + waves); // + one root per run

    // The plateau: bounded by the first wave's high-water mark (plus slack for scheduling
    // jitter between waves), and nowhere near linear in the total task count.
    assert_eq!(rt.capacity().live_tasks, 0, "no task may stay live after its run returned");
    assert!(
        max_table <= first_table * 3 + 1024,
        "task table must plateau (first wave {first_table} slots, max {max_table})"
    );
    assert!(
        max_table < total_tasks / 4,
        "task table grew with total tasks ({max_table} slots for {total_tasks} tasks)"
    );
    assert!(
        max_pending < total_tasks / 4,
        "pending slab grew with total tasks ({max_pending} slots for {total_tasks} tasks)"
    );
}

/// Stale ids from completed (and by then retired) tasks keep erroring forever — even after
/// their table slots have been reused by later waves, they must never report the state of the
/// younger occupant.
#[test]
fn stale_ids_error_after_retirement_and_reuse() {
    let rt = Runtime::with_workers(2);
    let cells = 8usize;
    let data = SharedSlice::<u64>::new(cells);

    let collect_wave = |label: &'static str| -> Vec<weakdep::TaskId> {
        let d = data.clone();
        rt.run(move |ctx| {
            (0..64usize)
                .map(|i| {
                    let cell = i % cells;
                    let d2 = d.clone();
                    ctx.task().inout(d.region(cell..cell + 1)).label(label).spawn(move |t| {
                        d2.write(t, cell..cell + 1)[0] += 1;
                    })
                })
                .collect()
        })
    };

    let first_wave = collect_wave("wave1");
    // After the run every task of the wave deeply completed and was retired.
    for &id in &first_wave {
        assert_eq!(
            rt.try_is_deeply_completed(id),
            Err(weakdep::StaleTaskId(id)),
            "{id:?} must be stale after its run completed"
        );
    }

    // Later waves reuse the retired slots (same indexes, bumped generations)...
    let second_wave = collect_wave("wave2");
    let reused = second_wave.iter().filter(|id| {
        first_wave.iter().any(|old| old.index() == id.index())
    });
    assert!(reused.count() > 0, "later waves must recycle earlier waves' slots");
    // ...and the stale ids still error: no aliasing through the recycled slots, ever.
    for &id in &first_wave {
        assert_eq!(rt.try_is_deeply_completed(id), Err(weakdep::StaleTaskId(id)));
    }
}
