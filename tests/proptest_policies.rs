//! Property-based observational equivalence of the scheduling policies (ISSUE 5): under
//! randomly shaped dependency graphs — mixed access types, partial overlaps, nested weak
//! tasks with `weakwait`, interleaved `taskwait`s — every [`SchedulingPolicy`] must produce
//! the **same data results** and fully drain the graph (`tasks_registered ==
//! tasks_deeply_completed`). Policies may reorder execution; they must never corrupt it.
//!
//! The determinism argument: every access a body performs is covered by a declared dependency,
//! and any two conflicting accesses are ordered by the engine in registration order (weak
//! accesses linearise children into their parent's window), so the final data is a function of
//! the graph alone — independent of which worker ran what when. A policy that broke ordering,
//! lost a ready task or double-dispatched one would diverge here.

use proptest::prelude::*;

use weakdep::{Runtime, RuntimeConfig, RuntimeStats, SchedulingPolicy, SharedSlice, TaskCtx};

const CELLS: usize = 64;
const BLOCK: usize = 8;

/// One randomly generated task: 1–3 accesses over (possibly partially overlapping) block
/// regions, optionally nested (weak outer + `weakwait`, one strong child doing the work),
/// optionally followed by a `taskwait` in the spawner.
#[derive(Clone, Debug)]
struct TaskDecl {
    /// (block index, access-type selector, start offset into the block).
    accesses: Vec<(u8, u8, u8)>,
    nested: bool,
    wait_after: bool,
    salt: u64,
}

fn decl_strategy() -> impl Strategy<Value = TaskDecl> {
    (
        proptest::collection::vec((0u8..8, 0u8..3, 0u8..4), 1..4),
        any::<bool>(),
        0u8..7,
        any::<u64>(),
    )
        .prop_map(|(accesses, nested, wait_sel, salt)| TaskDecl {
            accesses,
            nested,
            // A taskwait after roughly one task in seven keeps graphs parallel while still
            // exercising the work-conserving wait under every policy.
            wait_after: wait_sel == 0,
            salt,
        })
}

/// Element range of one access: a block, shifted by a small offset so neighbouring accesses
/// partially overlap (exercising the fragmented region tier).
fn range_of((block, _ty, off): (u8, u8, u8)) -> std::ops::Range<usize> {
    let start = (block as usize * BLOCK + off as usize).min(CELLS - 1);
    start..(start + BLOCK).min(CELLS)
}

/// The deterministic task body: fold every readable cell, then write every writable region as
/// a function of the fold, the salt and the previous value (for inout). All conflicting
/// accesses are ordered by the declared dependencies, so the result is schedule-independent.
fn apply_body(ctx: &TaskCtx<'_>, data: &SharedSlice<u64>, accesses: &[(u8, u8, u8)], salt: u64) {
    let mut acc = salt;
    for &a in accesses {
        let range = range_of(a);
        match a.1 {
            0 | 2 => {
                for v in data.read(ctx, range) {
                    acc = acc.wrapping_mul(31).wrapping_add(*v);
                }
            }
            _ => {}
        }
    }
    for &a in accesses {
        let range = range_of(a);
        match a.1 {
            1 => {
                // `out`: overwrite without reading (write-only contract).
                for (i, v) in data.write(ctx, range).iter_mut().enumerate() {
                    *v = acc.wrapping_add(i as u64);
                }
            }
            2 => {
                // `inout`: mix the previous value back in.
                for v in data.write(ctx, range).iter_mut() {
                    *v = v.wrapping_mul(3).wrapping_add(acc);
                }
            }
            _ => {}
        }
    }
}

fn spawn_decl(ctx: &TaskCtx<'_>, data: &SharedSlice<u64>, decl: &TaskDecl) {
    use weakdep::AccessType;
    let strong = |ty: u8| match ty {
        0 => AccessType::In,
        1 => AccessType::Out,
        _ => AccessType::InOut,
    };
    let weak = |ty: u8| match ty {
        0 => AccessType::WeakIn,
        1 => AccessType::WeakOut,
        _ => AccessType::WeakInOut,
    };
    if decl.nested {
        // The Listing-5 shape: weak outer + weakwait, one strong child doing the work.
        let mut builder = ctx.task().weakwait().label("outer");
        for &a in &decl.accesses {
            builder = builder.depend(weak(a.1), data.region(range_of(a)));
        }
        let inner = decl.clone();
        let d = data.clone();
        builder.spawn(move |outer| {
            let mut child = outer.task().label("inner");
            for &a in &inner.accesses {
                child = child.depend(strong(a.1), d.region(range_of(a)));
            }
            let d2 = d.clone();
            child.spawn(move |t| apply_body(t, &d2, &inner.accesses, inner.salt));
        });
    } else {
        let mut builder = ctx.task().label("flat");
        for &a in &decl.accesses {
            builder = builder.depend(strong(a.1), data.region(range_of(a)));
        }
        let inner = decl.clone();
        let d = data.clone();
        builder.spawn(move |t| apply_body(t, &d, &inner.accesses, inner.salt));
    }
    if decl.wait_after {
        ctx.taskwait();
    }
}

fn run_graph(decls: &[TaskDecl], policy: SchedulingPolicy) -> (Vec<u64>, RuntimeStats) {
    let rt = Runtime::new(RuntimeConfig::new().workers(2).scheduling_policy(policy));
    let data = SharedSlice::<u64>::filled(CELLS, 1);
    let d = data.clone();
    let decls = decls.to_vec();
    rt.run(move |ctx| {
        for decl in &decls {
            spawn_decl(ctx, &d, decl);
        }
    });
    (data.snapshot(), rt.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All four policies are observationally equivalent: identical data results, a fully
    /// drained graph, and a consistent scheduler accounting under every policy.
    #[test]
    fn policies_are_observationally_equivalent(
        decls in proptest::collection::vec(decl_strategy(), 1..24),
    ) {
        let mut reference: Option<Vec<u64>> = None;
        for policy in SchedulingPolicy::all() {
            let (snapshot, stats) = run_graph(&decls, policy);
            match &reference {
                None => reference = Some(snapshot),
                Some(expected) => prop_assert_eq!(
                    expected,
                    &snapshot,
                    "policy {} diverged from {}",
                    policy.name(),
                    SchedulingPolicy::all()[0].name()
                ),
            }
            prop_assert_eq!(
                stats.engine.tasks_registered,
                stats.engine.tasks_deeply_completed,
                "policy {}: every registered task must deeply complete",
                policy.name()
            );
            prop_assert_eq!(
                stats.tasks_executed,
                stats.successor_slot_hits + stats.local_pops + stats.injector_pops
                    + stats.steals,
                "policy {}: scheduler accounting identity violated",
                policy.name()
            );
        }
    }
}
