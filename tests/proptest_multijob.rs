//! Property-based tests of the multi-tenant service (ISSUE 8): K concurrent jobs on one
//! shared engine + pool must behave exactly like K isolated runtimes.
//!
//! * **Isolation** — each job's final data equals the data the same graph produces on a fresh
//!   single-job runtime: jobs are independent root domains, so no dependency, conflict or
//!   effect ever crosses jobs.
//! * **Per-job accounting** — every finished job reports `tasks_registered ==
//!   tasks_deeply_completed` on its own stats slice, and the aggregate engine accounting
//!   balances across the whole service.
//! * **Capacity plateau** — after every job retires, the service holds no live tasks or jobs:
//!   per-task slots are recycled across tenants, not leaked per job.
//! * **Cancellation** — after `cancel()` returns, no task body of the cancelled job ever
//!   starts (the `SeqCst` bracket argument in `weakdep::core`'s job module, model-checked in
//!   `crates/core/tests/loom_cancel.rs`); the cancelled job still drains and `wait()` returns
//!   `None`.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use weakdep::{Runtime, RuntimeConfig, SchedulingPolicy, SharedSlice, TaskCtx};

const CELLS: usize = 32;
const BLOCK: usize = 8;

/// One randomly generated flat task of a job's graph: an access-typed block region plus a
/// salt folded into the data, with an optional `taskwait` after spawning.
#[derive(Clone, Debug)]
struct Decl {
    accesses: Vec<(u8, u8)>, // (block index, access-type selector)
    wait_after: bool,
    salt: u64,
}

fn decl_strategy() -> impl Strategy<Value = Decl> {
    (proptest::collection::vec((0u8..4, 0u8..3), 1..3), 0u8..5, any::<u64>()).prop_map(
        |(accesses, wait_sel, salt)| Decl { accesses, wait_after: wait_sel == 0, salt },
    )
}

fn range_of((block, _ty): (u8, u8)) -> std::ops::Range<usize> {
    let start = block as usize * BLOCK;
    start..start + BLOCK
}

fn apply_body(ctx: &TaskCtx<'_>, data: &SharedSlice<u64>, accesses: &[(u8, u8)], salt: u64) {
    let mut acc = salt;
    for &a in accesses {
        if a.1 != 1 {
            for v in data.read(ctx, range_of(a)) {
                acc = acc.wrapping_mul(31).wrapping_add(*v);
            }
        }
    }
    for &a in accesses {
        match a.1 {
            1 => {
                for (i, v) in data.write(ctx, range_of(a)).iter_mut().enumerate() {
                    *v = acc.wrapping_add(i as u64);
                }
            }
            2 => {
                for v in data.write(ctx, range_of(a)).iter_mut() {
                    *v = v.wrapping_mul(3).wrapping_add(acc);
                }
            }
            _ => {}
        }
    }
}

fn spawn_decl(ctx: &TaskCtx<'_>, data: &SharedSlice<u64>, decl: &Decl) {
    use weakdep::AccessType;
    let strong = |ty: u8| match ty {
        0 => AccessType::In,
        1 => AccessType::Out,
        _ => AccessType::InOut,
    };
    let mut builder = ctx.task().label("job-task");
    for &a in &decl.accesses {
        builder = builder.depend(strong(a.1), data.region(range_of(a)));
    }
    let inner = decl.clone();
    let d = data.clone();
    builder.spawn(move |t| apply_body(t, &d, &inner.accesses, inner.salt));
    if decl.wait_after {
        ctx.taskwait();
    }
}

/// The reference: the same graph on a fresh, isolated single-job runtime.
fn run_isolated(decls: &[Decl]) -> Vec<u64> {
    let rt = Runtime::new(RuntimeConfig::new().workers(2));
    let data = SharedSlice::<u64>::filled(CELLS, 1);
    let d = data.clone();
    let decls = decls.to_vec();
    rt.run(move |ctx| {
        for decl in &decls {
            spawn_decl(ctx, &d, decl);
        }
    });
    data.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// K concurrent jobs on one service: isolation, per-job accounting, capacity plateau —
    /// under both the locality default and the fair-share policy.
    #[test]
    fn concurrent_jobs_match_isolated_runtimes(
        jobs in proptest::collection::vec(
            proptest::collection::vec(decl_strategy(), 1..10),
            2..5,
        ),
    ) {
        for policy in [SchedulingPolicy::LocalitySlot, SchedulingPolicy::FairShare] {
            let rt = Runtime::new(RuntimeConfig::new().workers(4).scheduling_policy(policy));
            let handles: Vec<_> = jobs
                .iter()
                .map(|decls| {
                    let decls = decls.clone();
                    rt.submit(move |ctx| {
                        let data = SharedSlice::<u64>::filled(CELLS, 1);
                        for decl in &decls {
                            spawn_decl(ctx, &data, decl);
                        }
                        ctx.taskwait();
                        data.snapshot()
                    })
                })
                .collect();
            for (decls, handle) in jobs.iter().zip(handles) {
                let job_stats = handle.stats();
                let snapshot = handle.wait().expect("an uncancelled job returns its value");
                prop_assert_eq!(
                    snapshot,
                    run_isolated(decls),
                    "policy {}: a shared-service job diverged from its isolated run",
                    policy.name()
                );
                prop_assert!(
                    job_stats.tasks_deeply_completed <= job_stats.tasks_registered,
                    "a live stats slice can never over-report completion"
                );
            }
            let stats = rt.stats();
            prop_assert_eq!(
                stats.engine.tasks_registered, stats.engine.tasks_deeply_completed,
                "aggregate accounting must balance once every job retired"
            );
            // Every job retired: the per-job slices balance and the service is at plateau.
            let capacity = rt.capacity();
            prop_assert_eq!(capacity.live_tasks, 0, "no live tasks after all jobs finished");
            prop_assert_eq!(capacity.live_jobs, 0, "no live jobs after all jobs finished");
            prop_assert!(rt.job_stats().is_empty());
            prop_assert_eq!(stats.jobs_submitted, jobs.len());
            prop_assert_eq!(stats.jobs_completed, jobs.len());
        }
    }

    /// Cancelling a random subset of concurrent jobs: no body of a cancelled job starts after
    /// its `cancel()` returned, cancelled jobs still drain (the service finishes all jobs),
    /// and survivors are unaffected.
    #[test]
    fn cancelled_jobs_never_run_bodies_after_cancel_returns(
        job_sizes in proptest::collection::vec(1usize..20, 2..5),
        cancel_mask in proptest::collection::vec(any::<bool>(), 4..5),
    ) {
        let rt = Runtime::new(RuntimeConfig::new().workers(2));
        let violations = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = job_sizes
            .iter()
            .map(|&n| {
                let cancel_returned = Arc::new(AtomicBool::new(false));
                let (cr, v) = (Arc::clone(&cancel_returned), Arc::clone(&violations));
                let handle = rt.submit(move |ctx| {
                    for _ in 0..n {
                        let (cr2, v2) = (Arc::clone(&cr), Arc::clone(&v));
                        ctx.task().label("cancellable").spawn(move |_| {
                            // Body start: must never observe its own job's cancel() returned.
                            if cr2.load(Ordering::SeqCst) {
                                v2.fetch_add(1, Ordering::SeqCst);
                            }
                        });
                    }
                    ctx.taskwait();
                });
                (handle, cancel_returned)
            })
            .collect();
        let mut cancelled = 0;
        for (i, (handle, cancel_returned)) in handles.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                handle.cancel();
                cancel_returned.store(true, Ordering::SeqCst);
                cancelled += 1;
            }
        }
        for (handle, _) in handles {
            // Cancelled roots may or may not have produced a value (the root body might have
            // finished before cancel); either way the job drains and wait() returns.
            let _ = handle.wait();
        }
        prop_assert_eq!(
            violations.load(Ordering::SeqCst), 0,
            "a task body started after its job's cancel() returned"
        );
        let stats = rt.stats();
        prop_assert_eq!(stats.jobs_completed, job_sizes.len(), "cancelled jobs must drain");
        // `<=`: a job that finished before its cancel() landed is completed but not counted
        // as cancelled (the flag was set after its root retired from the registry).
        prop_assert!(stats.jobs_cancelled <= cancelled);
        prop_assert_eq!(rt.capacity().live_jobs, 0);
    }
}
