//! Integration tests of the work-assisting loop primitives (ISSUE 10) through the public
//! facade: cooperative deadline/cancel observation at chunk boundaries (the PR 9 follow-up —
//! a single long-running body no longer overshoots its deadline unbounded), chunk-panic
//! containment through the job failure path, and tenant attribution of assist work in the
//! per-job and runtime-wide stats.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use weakdep::{JobError, JobOptions, Runtime, RuntimeConfig, SharedSlice};

fn runtime(workers: usize) -> Runtime {
    Runtime::new(RuntimeConfig::new().workers(workers))
}

/// One registered task whose body is a single big `for_each` over `chunks` unit chunks, each
/// sleeping `per_chunk` (a long-running data-parallel body). Returns the chunk counter.
fn submit_big_loop(
    rt: &Runtime,
    options: JobOptions,
    chunks: usize,
    per_chunk: Duration,
) -> (weakdep::JobHandle<()>, Arc<AtomicUsize>) {
    let ran = Arc::new(AtomicUsize::new(0));
    let observer = Arc::clone(&ran);
    let handle = rt.submit_with(options, move |root| {
        let data = SharedSlice::<u64>::new(chunks);
        let d = data.clone();
        root.task().inout(data.region(0..chunks)).label("big-loop").spawn(move |t| {
            let view = d.loop_view_mut(t, 0..chunks);
            let counter = Arc::clone(&observer);
            t.for_each(0..chunks, 1, move |s, e| {
                view.chunk(s..e).fill(1);
                counter.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(per_chunk);
            });
        });
    });
    (handle, ran)
}

/// Satellite 2: a deadline job whose body is one big `for_each` stops issuing chunks at the
/// next chunk boundary after the watchdog aborts it — the loop does not run to completion,
/// and the job reports `DeadlineExceeded` long before the full loop would have finished.
#[test]
fn deadline_is_observed_at_chunk_boundaries() {
    let rt = runtime(2);
    // 4000 chunks × 2ms ≈ 8s of loop if the deadline were ignored; the deadline is 100ms.
    let chunks = 4000;
    let started = Instant::now();
    let (handle, ran) = submit_big_loop(
        &rt,
        JobOptions::new().deadline(Duration::from_millis(100)).label("deadline-loop"),
        chunks,
        Duration::from_millis(2),
    );
    let outcome = handle.wait_result();
    let elapsed = started.elapsed();
    assert!(
        matches!(outcome, Err(JobError::DeadlineExceeded)),
        "expected DeadlineExceeded, got {outcome:?}"
    );
    let executed = ran.load(Ordering::SeqCst);
    assert!(executed < chunks, "the loop must not run to completion ({executed}/{chunks})");
    assert!(
        elapsed < Duration::from_secs(4),
        "the abort must cut the loop short promptly (took {elapsed:?})"
    );
}

/// Explicit `cancel()` is observed the same way: claims stop at the next chunk boundary and
/// the in-flight body returns, so `cancel` does not block behind the rest of the loop.
#[test]
fn cancel_is_observed_at_chunk_boundaries() {
    let rt = runtime(2);
    let chunks = 4000;
    let (handle, ran) = submit_big_loop(
        &rt,
        JobOptions::new().label("cancelled-loop"),
        chunks,
        Duration::from_millis(2),
    );
    // Wait for the loop to actually start, then cancel mid-flight.
    while ran.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    handle.cancel();
    let executed = ran.load(Ordering::SeqCst);
    assert!(executed < chunks, "cancel must stop the loop mid-flight ({executed}/{chunks})");
    let outcome = handle.wait_result();
    assert!(matches!(outcome, Err(JobError::Cancelled)), "expected Cancelled, got {outcome:?}");
}

/// A panic inside one chunk is contained per-chunk, the loop drains (no chunk is lost), and
/// the payload flows through the job's normal failure path with the original message.
#[test]
fn chunk_panic_flows_through_the_job_failure_path() {
    let rt = runtime(2);
    let handle = rt.submit_with(JobOptions::new().label("poisoned-loop"), move |root| {
        let data = SharedSlice::<u64>::new(64);
        let d = data.clone();
        root.task().inout(data.region(0..64)).label("poisoned").spawn(move |t| {
            let view = d.loop_view_mut(t, 0..64);
            t.for_each(0..64, 4, move |s, e| {
                if s == 32 {
                    panic!("chunk 32 exploded");
                }
                view.chunk(s..e).fill(1);
            });
        });
    });
    match handle.wait_result() {
        Err(JobError::Panicked { message, .. }) => {
            assert!(message.contains("chunk 32 exploded"), "unexpected message: {message}");
        }
        other => panic!("expected the chunk panic, got {other:?}"),
    }
}

/// Tenant attribution: assist work lands in the *registering* job's stats slice, and the
/// pool-wide assist counters satisfy `assisted_loops <= assist_steals <= assist_chunks`.
/// With two workers and a single in-flight task, the idle worker is recruited by the loop's
/// publish and must claim chunks (512 × 1ms leaves it an enormous window).
#[test]
fn assist_work_is_attributed_to_the_registering_job() {
    let rt = runtime(2);
    let (handle, ran) = submit_big_loop(
        &rt,
        JobOptions::new().label("assisted-loop"),
        512,
        Duration::from_millis(1),
    );
    let outcome = handle
        .wait_timeout(Duration::from_secs(60))
        .expect("the assisted loop finishes well within the timeout");
    assert!(outcome.is_ok(), "unexpected outcome: {outcome:?}");
    assert_eq!(ran.load(Ordering::SeqCst), 512, "every chunk ran exactly once");
    let job_stats = handle.stats();
    assert!(
        job_stats.assist_chunks > 0,
        "the idle worker must have assisted the job's loop (got {job_stats:?})"
    );
    let stats = rt.stats();
    assert!(stats.assisted_loops >= 1, "the loop was assisted");
    assert!(
        stats.assisted_loops <= stats.assist_steals && stats.assist_steals <= stats.assist_chunks,
        "assist counter identity violated: loops={} steals={} chunks={}",
        stats.assisted_loops,
        stats.assist_steals,
        stats.assist_chunks
    );
    assert_eq!(
        stats.assist_chunks, job_stats.assist_chunks,
        "with a single job, the pool-wide and per-job assist counts agree"
    );
}

/// `TaskCtx::is_cancelled` exposes the same abort bracket the chunk boundaries poll, so a
/// body can bail out of non-loop work too.
#[test]
fn is_cancelled_reflects_the_abort_bracket() {
    let rt = runtime(2);
    let observed = Arc::new(AtomicUsize::new(usize::MAX));
    let seen = Arc::clone(&observed);
    let handle = rt.submit_with(JobOptions::new().label("poll-cancel"), move |root| {
        assert!(!root.is_cancelled(), "a fresh job is not cancelled");
        let data = SharedSlice::<u64>::new(8);
        let d = data.clone();
        let seen = Arc::clone(&seen);
        root.task().inout(data.region(0..8)).label("poller").spawn(move |t| {
            let view = d.loop_view_mut(t, 0..8);
            // Spin inside the body until the cancel lands, proving the poll observes it
            // mid-body (not only between tasks).
            while !t.is_cancelled() {
                std::thread::yield_now();
            }
            seen.store(1, Ordering::SeqCst);
            // The loop below starts after the abort: no chunk may run.
            let ran = Arc::new(AtomicUsize::new(0));
            let r = Arc::clone(&ran);
            t.for_each(0..8, 1, move |s, e| {
                view.chunk(s..e).fill(1);
                r.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(ran.load(Ordering::SeqCst), 0, "an aborted job issues no chunks");
        });
    });
    // Let the body reach its poll loop, then cancel.
    std::thread::sleep(Duration::from_millis(20));
    handle.cancel();
    assert_eq!(observed.load(Ordering::SeqCst), 1, "the body observed the cancel");
}
