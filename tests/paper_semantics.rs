//! End-to-end tests of the semantic claims the paper makes about its extensions, checked on the
//! real multi-threaded runtime through execution traces.

use std::sync::Arc;
use std::time::Duration;

use weakdep::{Runtime, RuntimeConfig, SharedSlice};
use weakdep_trace::{TraceCollector, TraceEvent};

fn instrumented(workers: usize) -> (Runtime, Arc<TraceCollector>) {
    let trace = TraceCollector::shared();
    let rt = Runtime::new(RuntimeConfig::new().workers(workers).observer(trace.clone()));
    (rt, trace)
}

fn event<'a>(events: &'a [TraceEvent], label: &str) -> &'a TraceEvent {
    events
        .iter()
        .find(|e| e.label == label)
        .unwrap_or_else(|| panic!("no event with label {label}"))
}

/// Listing 2 (§V): with `weakwait`, a successor that only needs `a` starts as soon as the child
/// that produces `a` finishes, even though another child of the same parent is still running.
/// With the `wait` clause, the successor has to wait for every child.
#[test]
fn fine_grained_release_lets_successors_overtake_slow_siblings() {
    for (weak, name) in [(true, "weakwait"), (false, "wait")] {
        let (rt, trace) = instrumented(4);
        let a = SharedSlice::<u64>::new(1);
        let b = SharedSlice::<u64>::new(1);
        let (ar, br) = (a.clone(), b.clone());
        rt.run(move |ctx| {
            let (ai, bi) = (ar.clone(), br.clone());
            let builder = ctx
                .task()
                .inout(ar.region(0..1))
                .inout(br.region(0..1))
                .label("T1");
            let builder = if weak { builder.weakwait() } else { builder.wait() };
            builder.spawn(move |t| {
                let a2 = ai.clone();
                t.task().inout(ai.region(0..1)).label("T1.1").spawn(move |c| {
                    std::thread::sleep(Duration::from_millis(10));
                    a2.write(c, 0..1)[0] = 1;
                });
                let b2 = bi.clone();
                t.task().inout(bi.region(0..1)).label("T1.2").spawn(move |c| {
                    std::thread::sleep(Duration::from_millis(300));
                    b2.write(c, 0..1)[0] = 2;
                });
            });
            let a3 = ar.clone();
            ctx.task().input(ar.region(0..1)).label("T2").spawn(move |c| {
                assert_eq!(a3.read(c, 0..1)[0], 1);
            });
            let b3 = br.clone();
            ctx.task().input(br.region(0..1)).label("T3").spawn(move |c| {
                assert_eq!(b3.read(c, 0..1)[0], 2);
            });
        });
        let events = trace.events();
        let t12 = event(&events, "T1.2");
        let t2 = event(&events, "T2");
        let t3 = event(&events, "T3");
        // T3 needs b in both variants: it can never start before T1.2 ends.
        assert!(t3.start_ns >= t12.end_ns, "{name}: T3 must wait for T1.2");
        if weak {
            assert!(
                t2.start_ns < t12.end_ns,
                "weakwait: T2 (needs only a) must start while T1.2 (300 ms) is still running; \
                 started {} ns after T1.2 ended",
                t2.start_ns.saturating_sub(t12.end_ns)
            );
        } else {
            assert!(
                t2.start_ns >= t12.end_ns,
                "wait: T2 must not start before every child of T1 finished"
            );
        }
    }
}

/// §VI: weak dependencies let the outer tasks run (and instantiate their children) in parallel,
/// while strong outer dependencies serialise them.
#[test]
fn weak_outer_dependencies_allow_parallel_instantiation() {
    let run_variant = |weak: bool| -> Vec<TraceEvent> {
        let (rt, trace) = instrumented(4);
        let data = SharedSlice::<u64>::new(4);
        let d = data.clone();
        rt.run(move |ctx| {
            for outer_idx in 0..2u64 {
                let d2 = d.clone();
                let label: &'static str = if outer_idx == 0 { "outer-0" } else { "outer-1" };
                let builder = ctx.task().label(label);
                let builder = if weak {
                    builder.weak_inout(d.region(0..4)).weakwait()
                } else {
                    builder.inout(d.region(0..4))
                };
                builder.spawn(move |t| {
                    // The outer body takes a while: it simulates the instantiation work.
                    std::thread::sleep(Duration::from_millis(100));
                    for i in 0..4usize {
                        let d3 = d2.clone();
                        t.task().inout(d2.region(i..i + 1)).label("inner").spawn(move |c| {
                            d3.write(c, i..i + 1)[0] += 1;
                        });
                    }
                    if !weak {
                        t.taskwait();
                    }
                });
            }
        });
        trace.events()
    };

    // Weak: the two outer bodies overlap in time.
    let events = run_variant(true);
    let o0 = event(&events, "outer-0");
    let o1 = event(&events, "outer-1");
    let overlap = o0.start_ns.max(o1.start_ns) < o0.end_ns.min(o1.end_ns);
    assert!(overlap, "weak outer tasks must instantiate their children in parallel");

    // Strong: the second outer task cannot start before the first one finished.
    let events = run_variant(false);
    let o0 = event(&events, "outer-0");
    let o1 = event(&events, "outer-1");
    let serialised = o1.start_ns >= o0.end_ns || o0.start_ns >= o1.end_ns;
    assert!(serialised, "strong outer dependencies must serialise the outer tasks");
}

/// §VIII-C / Figure 7: with weak dependencies the prefix sum overlaps the quicksort; with strong
/// dependencies + taskwait it starts only after the sort has completely finished.
#[test]
fn sort_and_scan_overlap_only_with_weak_dependencies() {
    use weakdep_kernels::sort_scan::{self, SortScanConfig, SortScanVariant};
    let cfg = SortScanConfig { n: 1 << 16, ts: 1 << 11, seed: 11 };

    let overlap_of = |variant: SortScanVariant| -> i64 {
        let (rt, trace) = instrumented(4);
        let (_run, result) = sort_scan::run(&rt, variant, &cfg);
        assert!(sort_scan::verify(&cfg, &result));
        let events = trace.events();
        let last_sort_end = events
            .iter()
            .filter(|e| e.label == "insertion_sort" || e.label == "quick_sort")
            .map(|e| e.end_ns)
            .max()
            .unwrap() as i64;
        let first_scan_start = events
            .iter()
            .filter(|e| e.label == "prefix_sum" || e.label == "accumulation")
            .map(|e| e.start_ns)
            .min()
            .unwrap() as i64;
        last_sort_end - first_scan_start
    };

    // Strong variant: the scan strictly follows the sort.
    assert!(
        overlap_of(SortScanVariant::Strong) <= 0,
        "with taskwait + regular dependencies the prefix sum must not overlap the sort"
    );
    // Weak variant: there must be real overlap.
    assert!(
        overlap_of(SortScanVariant::Weak) > 0,
        "with weakwait + weak dependencies the prefix sum must overlap the sort"
    );
}

/// The `release` directive (§V) makes a consumer runnable while the producer task is still
/// executing, without breaking the ordering of the not-yet-released part.
#[test]
fn release_directive_end_to_end() {
    let (rt, trace) = instrumented(2);
    let data = SharedSlice::<u64>::new(2);
    let d = data.clone();
    rt.run(move |ctx| {
        let dp = d.clone();
        ctx.task().inout(d.region(0..2)).label("producer").spawn(move |t| {
            dp.write(t, 0..1)[0] = 41;
            t.release(dp.region(0..1));
            std::thread::sleep(Duration::from_millis(150));
            dp.write(t, 1..2)[0] = 43;
        });
        let d_early = d.clone();
        ctx.task().input(d.region(0..1)).label("early-consumer").spawn(move |c| {
            assert_eq!(d_early.read(c, 0..1)[0], 41);
        });
        let d_late = d.clone();
        ctx.task().input(d.region(1..2)).label("late-consumer").spawn(move |c| {
            assert_eq!(d_late.read(c, 1..2)[0], 43);
        });
    });
    let events = trace.events();
    let producer = event(&events, "producer");
    let early = event(&events, "early-consumer");
    let late = event(&events, "late-consumer");
    assert!(
        early.start_ns < producer.end_ns,
        "the early consumer must run while the producer still sleeps"
    );
    assert!(late.start_ns >= producer.end_ns, "the late consumer must wait for the producer");
}

/// Conflicting strong accesses never overlap in time, whatever the nesting (a safety property of
/// the whole runtime, checked on the Gauss-Seidel kernel which mixes all features).
#[test]
fn conflicting_block_tasks_never_overlap() {
    use weakdep_kernels::gauss_seidel::{self, GsConfig, GsVariant};
    let (rt, trace) = instrumented(4);
    let cfg = GsConfig { blocks: 3, ts: 8, iterations: 3 };
    let (_run, result) = gauss_seidel::run(&rt, GsVariant::NestWeak, &cfg);
    assert!(gauss_seidel::verify(&cfg, &result));
    // All tile tasks writing the same block must be totally ordered in time. We cannot recover
    // the block from the label, but we can at least assert global sanity: no more events than
    // tasks, and every event has a positive duration and a worker below the pool size.
    let events = trace.events();
    assert_eq!(events.len(), cfg.task_count(GsVariant::NestWeak));
    for e in &events {
        assert!(e.end_ns >= e.start_ns);
        assert!(e.worker < 4);
    }
}
