//! Concurrency stress tests for the sharded (per-domain-lock) dependency engine.
//!
//! Many workers concurrently spawn nested task trees with overlapping dependencies — the access
//! pattern that exercises the cross-domain message protocol (satisfaction flowing down, deep
//! completion flowing up) from several threads at once. After every run the engine's books must
//! balance: every registered task deeply completed, every expected body executed, and the data
//! must match a sequential model. A lost wake-up, a dropped message or a lock-ordering bug shows
//! up here as a hang (no deadlock may ever occur) or as a failed balance assertion.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use weakdep::{Runtime, SharedSlice, TaskSpec};

/// Asserts the engine's books balance after `run` returned: everything registered has deeply
/// completed and every non-root task executed exactly once.
fn assert_balanced(rt: &Runtime, expected_tasks: usize, runs: usize) {
    let stats = rt.stats();
    assert_eq!(
        stats.engine.tasks_registered,
        stats.engine.tasks_deeply_completed,
        "every registered task (roots included) must deeply complete"
    );
    assert_eq!(
        stats.engine.tasks_registered,
        expected_tasks + runs,
        "unexpected task count (expected {expected_tasks} tasks + {runs} roots)"
    );
    assert_eq!(stats.tasks_executed, expected_tasks, "every spawned task must execute");
}

/// Flat fan-out from many workers: outer tasks spawn their own children concurrently, all over
/// disjoint regions, using the batched spawn path.
#[test]
fn concurrent_batched_fanout_balances() {
    let workers = 8;
    let outers = 24usize;
    let inners = 64usize;
    let rt = Runtime::with_workers(workers);
    let data = SharedSlice::<u64>::new(outers * inners);
    let executed = Arc::new(AtomicUsize::new(0));

    let d = data.clone();
    let ex = Arc::clone(&executed);
    rt.run(move |root| {
        let specs: Vec<TaskSpec> = (0..outers)
            .map(|o| {
                let d2 = d.clone();
                let ex2 = Arc::clone(&ex);
                root.task()
                    .weak_inout(d.region(o * inners..(o + 1) * inners))
                    .weakwait()
                    .label("outer")
                    .stage(move |outer| {
                        ex2.fetch_add(1, Ordering::Relaxed);
                        let inner_specs: Vec<TaskSpec> = (0..inners)
                            .map(|i| {
                                let cell = o * inners + i;
                                let d3 = d2.clone();
                                let ex3 = Arc::clone(&ex2);
                                outer
                                    .task()
                                    .inout(d2.region(cell..cell + 1))
                                    .label("inner")
                                    .stage(move |t| {
                                        d3.write(t, cell..cell + 1)[0] += 1 + cell as u64;
                                        ex3.fetch_add(1, Ordering::Relaxed);
                                    })
                            })
                            .collect();
                        outer.spawn_batch(inner_specs);
                    })
            })
            .collect();
        root.spawn_batch(specs);
    });

    assert_eq!(executed.load(Ordering::Relaxed), outers + outers * inners);
    for (cell, v) in data.snapshot().iter().enumerate() {
        assert_eq!(*v, 1 + cell as u64, "cell {cell}");
    }
    assert_balanced(&rt, outers + outers * inners, 1);
}

/// Overlapping dependency chains spawned concurrently from nested tasks: every chain serialises
/// on its cell while different chains proceed in parallel, across repeated runs of the same
/// runtime (slot recycling is exercised by the reuse).
#[test]
fn concurrent_overlapping_chains_balance_across_runs() {
    let workers = 8;
    let cells = 16usize;
    let links = 25usize;
    let spawners = 8usize;
    let runs = 6usize;
    let rt = Runtime::with_workers(workers);
    let data = SharedSlice::<u64>::new(cells);

    for _ in 0..runs {
        let d = data.clone();
        rt.run(move |root| {
            // Several "spawner" tasks run on different workers; each spawns chain links over
            // every cell, interleaved with the other spawners' registrations.
            let specs: Vec<TaskSpec> = (0..spawners)
                .map(|_| {
                    let d2 = d.clone();
                    root.task().label("spawner").weakwait().weak_inout(d2.region(0..cells)).stage(
                        move |spawner| {
                            for link in 0..links {
                                let cell = link % cells;
                                let d3 = d2.clone();
                                spawner
                                    .task()
                                    .inout(d2.region(cell..cell + 1))
                                    .label("link")
                                    .spawn(move |t| {
                                        d3.write(t, cell..cell + 1)[0] += 1;
                                    });
                            }
                        },
                    )
                })
                .collect();
            root.spawn_batch(specs);
        });
    }

    let expected_per_cell = {
        let mut counts = vec![0u64; cells];
        for _ in 0..runs {
            for _ in 0..spawners {
                for link in 0..links {
                    counts[link % cells] += 1;
                }
            }
        }
        counts
    };
    assert_eq!(data.snapshot(), expected_per_cell);
    assert_balanced(&rt, runs * (spawners + spawners * links), runs);
}

/// Three-level nesting with weak accesses and cross-level dependencies, spawned from many
/// workers: satisfaction must traverse domains downwards while deep completion climbs upwards,
/// concurrently, without losing either.
#[test]
fn concurrent_three_level_nesting_balances() {
    let workers = 8;
    let groups = 12usize;
    let rounds = 4usize;
    let rt = Runtime::with_workers(workers);
    let data = SharedSlice::<u64>::new(groups);

    for _ in 0..rounds {
        let d = data.clone();
        rt.run(move |root| {
            for g in 0..groups {
                let d2 = d.clone();
                // Producer overwrites the cell; a two-level weak nest then triples it — the
                // leaf's strong access inherits the dependency on the producer through two weak
                // levels.
                let dp = d2.clone();
                root.task().output(d2.region(g..g + 1)).label("producer").spawn(move |t| {
                    dp.write(t, g..g + 1)[0] = g as u64 + 1;
                });
                let d3 = d2.clone();
                root.task()
                    .weak_inout(d2.region(g..g + 1))
                    .weakwait()
                    .label("middle")
                    .spawn(move |mid| {
                        let d4 = d3.clone();
                        mid.task()
                            .weak_inout(d3.region(g..g + 1))
                            .weakwait()
                            .label("inner")
                            .spawn(move |inner| {
                                let d5 = d4.clone();
                                inner
                                    .task()
                                    .inout(d4.region(g..g + 1))
                                    .label("leaf")
                                    .spawn(move |t| {
                                        d5.write(t, g..g + 1)[0] *= 3;
                                    });
                            });
                    });
            }
        });
    }

    // Per round each cell is overwritten with (g+1) and then tripled.
    let snapshot = data.snapshot();
    for (g, v) in snapshot.iter().enumerate() {
        assert_eq!(*v, 3 * (g as u64 + 1), "cell {g}");
    }
    assert_balanced(&rt, rounds * groups * 4, rounds);
}
