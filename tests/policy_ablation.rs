//! The Figure 3 policy ordering, asserted rather than eyeballed (ISSUE 5 acceptance): on the
//! `nest-weak-release` Multiple-AXPY variant, the locality policies (`LocalitySlot`,
//! `HierarchicalSteal`) must show a **strictly lower** simulated L2 miss ratio than the
//! breadth-first `Fifo` baseline, while every policy produces identical kernel results.
//!
//! The configuration is the deterministic single-worker one (see `docs/scheduling.md`):
//! vectors far larger than the simulated 256 KiB per-worker L2, leaf tasks well inside it, and
//! enough calls (≥ 12) that the injector batch-steal moves *runs* of outer tasks onto the
//! worker's deque — whose LIFO pop order registers future calls before earlier calls drain, so
//! per-block dependency chains form and the successor slot / LIFO deque follow them.
//! `weakdep_cachesim` sees only the (task → worker, footprint, order) schedule, which is what
//! makes the ordering reproducible on a 1-CPU container.

use weakdep::cachesim::{CacheConfig, CacheSimObserver};
use weakdep::kernels::axpy::{self, AxpyConfig, AxpyVariant};
use weakdep::{Runtime, RuntimeConfig, SchedulingPolicy, SharedSlice};

fn axpy_cfg() -> AxpyConfig {
    AxpyConfig { n: 1 << 17, calls: 12, task_size: 4 << 10, alpha: 1.000001 }
}

/// Runs `nest-weak-release` under `policy` on one worker; returns (miss ratio, result vector,
/// successor-slot hits).
fn run_policy(policy: SchedulingPolicy) -> (f64, Vec<f64>, usize) {
    let cfg = axpy_cfg();
    let sim = CacheSimObserver::shared(CacheConfig::default());
    let rt = Runtime::new(
        RuntimeConfig::new().workers(1).scheduling_policy(policy).observer(sim.clone()),
    );
    let x = SharedSlice::<f64>::new(cfg.n);
    let y = SharedSlice::<f64>::new(cfg.n);
    axpy::initialize(&x, &y);
    let _run = axpy::run_on(&rt, AxpyVariant::NestWeakRelease, &cfg, &x, &y);
    (sim.miss_ratio(), y.snapshot(), rt.stats().successor_slot_hits)
}

#[test]
fn locality_policies_have_strictly_lower_miss_ratio_than_fifo() {
    let cfg = axpy_cfg();
    let (miss_local, result_local, hits_local) = run_policy(SchedulingPolicy::LocalitySlot);
    let (miss_hier, result_hier, hits_hier) = run_policy(SchedulingPolicy::hierarchical());
    let (miss_fifo, result_fifo, hits_fifo) = run_policy(SchedulingPolicy::Fifo);

    // All policies compute the same kernel result (observational equivalence).
    assert!(axpy::verify(&cfg, &result_local), "LocalitySlot result is wrong");
    assert_eq!(result_local, result_hier, "HierarchicalSteal diverged");
    assert_eq!(result_local, result_fifo, "Fifo diverged");

    // The Figure 3 scheduling effect: exposing dependencies to a locality-aware scheduler
    // lowers the (simulated) L2 miss ratio; the no-locality baseline streams the whole vector
    // pair per call.
    assert!(
        miss_local < miss_fifo,
        "LocalitySlot miss ratio {miss_local:.4} must be strictly below Fifo {miss_fifo:.4}"
    );
    assert!(
        miss_hier < miss_fifo,
        "HierarchicalSteal miss ratio {miss_hier:.4} must be strictly below Fifo {miss_fifo:.4}"
    );
    // Mechanism check, not just outcome: the slot policies actually chained successors, the
    // fifo baseline never touched the slot.
    assert!(hits_local > 0 && hits_hier > 0, "slot policies must dispatch via the slot");
    assert_eq!(hits_fifo, 0, "fifo must never use the successor slot");
}

#[test]
fn runtime_stats_accounting_identity_holds_for_every_policy() {
    // executed == slot + local + injector + stolen, under every policy, on a workload that
    // exercises chains (slot), spawn waves (deque/injector) and a taskwait.
    for policy in SchedulingPolicy::all() {
        let rt = Runtime::new(RuntimeConfig::new().workers(2).scheduling_policy(policy));
        let data = SharedSlice::<u64>::new(256);
        let d = data.clone();
        rt.run(move |ctx| {
            for i in 0..256usize {
                let d2 = d.clone();
                ctx.task().output(d.region(i..i + 1)).label("init").spawn(move |t| {
                    d2.write(t, i..i + 1)[0] = i as u64;
                });
            }
            ctx.taskwait();
            for _ in 0..3 {
                for i in 0..256usize {
                    let d2 = d.clone();
                    ctx.task().inout(d.region(i..i + 1)).label("chain").spawn(move |t| {
                        d2.write(t, i..i + 1)[0] += 1;
                    });
                }
            }
        });
        for (i, v) in data.snapshot().into_iter().enumerate() {
            assert_eq!(v, i as u64 + 3, "policy {}: cell {i}", policy.name());
        }
        let s = rt.stats();
        assert_eq!(s.tasks_executed, 4 * 256, "policy {}", policy.name());
        assert_eq!(
            s.tasks_executed,
            s.successor_slot_hits + s.local_pops + s.injector_pops + s.steals,
            "policy {}: acquisition sources must account for every executed task (stats: {s:?})",
            policy.name()
        );
        assert_eq!(
            s.steals,
            s.steals_same_domain + s.steals_cross_domain,
            "policy {}: steal counters must split cleanly",
            policy.name()
        );
        assert_eq!(s.policy, policy.name());
    }
}
