//! Property-based equivalence suite for the two-tier region store.
//!
//! Two independent layers:
//!
//! 1. **Container equivalence** — under random region/update sequences, [`RegionStore`] must be
//!    observationally equivalent to a pure [`RegionMap`] reference model: identical visit
//!    sequences during every update, identical stored fragments, identical query results. The
//!    exact tier and its lazy promotion are pure optimisations; any divergence is a bug.
//! 2. **Engine equivalence** — under random mixes of exact-matching and partially-overlapping
//!    dependencies, the engine built on the store must still execute every task and respect
//!    program order between conflicting accesses, and its matching-tier counters must account
//!    for every registered access.

use proptest::prelude::*;

use weakdep::core::DependencyEngine;
use weakdep::regions::{RangeUpdate, Region, RegionMap, RegionStore, SpaceId};
use weakdep::{AccessType, Depend, WaitMode};

/// One randomly generated store operation.
#[derive(Clone, Debug)]
struct Op {
    space: u8,
    start: u16,
    len: u8,
    value: u32,
    /// 0 = set, 1 = remove, 2 = visit-only (Keep).
    kind: u8,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..3, 0u16..200, 1u8..40, any::<u32>(), 0u8..3).prop_map(
        |(space, start, len, value, kind)| Op { space, start, len, value, kind },
    )
}

fn op_region(op: &Op) -> Region {
    let start = op.start as usize;
    Region::new(SpaceId(op.space as u64), start, start + op.len as usize)
}

fn sorted_fragments<V: Clone + std::fmt::Debug>(
    it: impl Iterator<Item = (Region, V)>,
) -> Vec<(Region, V)> {
    let mut out: Vec<(Region, V)> = it.collect();
    out.sort_by_key(|(region, _)| (region.space, region.start, region.end));
    out
}

/// Deterministic pseudo-random picker (the interleaving source), seeded by proptest.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The two-tier store and the pure interval-map reference must agree on every visit, every
    /// stored fragment and every query, whatever mix of exact matches, partial overlaps,
    /// removals and read-only visits the sequence throws at them.
    #[test]
    fn store_matches_region_map_reference(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut store: RegionStore<u32> = RegionStore::new();
        let mut reference: RegionMap<u32> = RegionMap::new();

        for op in &ops {
            let region = op_region(op);
            let mut store_visits: Vec<(Region, Option<u32>)> = Vec::new();
            let mut reference_visits: Vec<(Region, Option<u32>)> = Vec::new();
            store.update(&region, |fragment, existing| {
                store_visits.push((fragment, existing.copied()));
                match op.kind {
                    0 => RangeUpdate::Set(op.value),
                    1 => RangeUpdate::Remove,
                    _ => RangeUpdate::Keep,
                }
            });
            reference.update(&region, |fragment, existing| {
                reference_visits.push((fragment, existing.copied()));
                match op.kind {
                    0 => RangeUpdate::Set(op.value),
                    1 => RangeUpdate::Remove,
                    _ => RangeUpdate::Keep,
                }
            });
            prop_assert_eq!(&store_visits, &reference_visits,
                "visit sequences diverged on {:?}", op);

            // Stored fragments agree after every operation (sorted: the exact tier is hashed).
            let store_now = sorted_fragments(store.iter().map(|(r, v)| (r, *v)));
            let reference_now = sorted_fragments(reference.iter().map(|(r, v)| (r, *v)));
            prop_assert_eq!(&store_now, &reference_now, "fragments diverged after {:?}", op);
        }

        // Random queries agree too (including spaces the sequence never touched).
        for probe in 0..10usize {
            let region = Region::new(SpaceId((probe % 4) as u64), probe * 23, probe * 23 + 17);
            let mut store_hits: Vec<(Region, u32)> = Vec::new();
            store.query(&region, |r, v| store_hits.push((r, *v)));
            let mut reference_hits: Vec<(Region, u32)> = Vec::new();
            reference.query(&region, |r, v| reference_hits.push((r, *v)));
            prop_assert_eq!(
                sorted_fragments(store_hits.into_iter()),
                sorted_fragments(reference_hits.into_iter())
            );
            prop_assert_eq!(store.intersects(&region), reference.intersects(&region));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Demotion oracle at the store level: under random coalescing updates, the two-tier store
    /// must stay observationally equivalent to a pure reference (`RegionMap` update followed by
    /// the same local coalesce), and every update that reports `demoted` must leave the region
    /// served by the exact tier — a read-only probe of the same extent returns `ExactHit`.
    #[test]
    fn coalescing_updates_match_reference_and_demote_to_exact(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        use weakdep::regions::StoreTier;

        let mut store: RegionStore<u32> = RegionStore::new();
        let mut reference: RegionMap<u32> = RegionMap::new();

        for op in &ops {
            let region = op_region(op);
            let mut store_visits: Vec<(Region, Option<u32>)> = Vec::new();
            let mut reference_visits: Vec<(Region, Option<u32>)> = Vec::new();
            let (tier, demoted) = store.update_coalescing(&region, |fragment, existing| {
                store_visits.push((fragment, existing.copied()));
                match op.kind {
                    0 => RangeUpdate::Set(op.value),
                    1 => RangeUpdate::Remove,
                    _ => RangeUpdate::Keep,
                }
            });
            reference.update(&region, |fragment, existing| {
                reference_visits.push((fragment, existing.copied()));
                match op.kind {
                    0 => RangeUpdate::Set(op.value),
                    1 => RangeUpdate::Remove,
                    _ => RangeUpdate::Keep,
                }
            });
            // Mirror the store's eager local coalesce, which only runs when the update reached
            // the fragmented tier (exact-tier entries are never merged with their neighbours).
            // Demotion itself only moves a fragment between tiers, which `iter` flattens away.
            if matches!(tier, StoreTier::Promoted | StoreTier::Fragmented) {
                reference.coalesce_region(&region);
            }
            prop_assert_eq!(&store_visits, &reference_visits,
                "visit sequences diverged on {:?}", op);

            let store_now = sorted_fragments(store.iter().map(|(r, v)| (r, *v)));
            let reference_now = sorted_fragments(reference.iter().map(|(r, v)| (r, *v)));
            prop_assert_eq!(&store_now, &reference_now, "fragments diverged after {:?}", op);

            if demoted {
                // A demoted extent must be back on the exact tier: a read-only update of the
                // same region is an exact hit (and mutates nothing).
                let probe = store.update(&region, |_, _| RangeUpdate::Keep);
                prop_assert_eq!(probe, StoreTier::ExactHit,
                    "demoted extent not served exactly after {:?}", op);
            }
        }
    }
}

/// One randomly declared flat task: 1–3 accesses drawn from a pool that mixes aligned blocks
/// (exact-tier traffic) with misaligned half-overlapping ranges (promotion + fragmented-tier
/// traffic).
#[derive(Clone, Debug)]
struct Decl {
    accesses: Vec<(u8, u8)>, // (region selector 0..12, access-type selector 0..3)
}

fn decl_strategy() -> impl Strategy<Value = Decl> {
    proptest::collection::vec((0u8..12, 0u8..3), 1..4).prop_map(|accesses| Decl { accesses })
}

fn pool_region(selector: u8) -> Region {
    let i = (selector % 6) as usize;
    if selector < 6 {
        // Aligned block: always matches itself exactly.
        Region::new(SpaceId(1), i * 10, i * 10 + 10)
    } else {
        // Misaligned: straddles two aligned blocks, forcing promotion and fragmentation.
        Region::new(SpaceId(1), i * 10 + 5, i * 10 + 15)
    }
}

fn deps_of(decl: &Decl) -> Vec<Depend> {
    decl.accesses
        .iter()
        .map(|&(r, a)| {
            let access = match a {
                0 => AccessType::In,
                1 => AccessType::Out,
                _ => AccessType::InOut,
            };
            Depend::new(access, pool_region(r))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// End-to-end through the engine: random exact/overlapping dependency mixes executed in a
    /// random legal order must run every task, respect program order between conflicting
    /// accesses, and account for every access in the matching-tier counters.
    #[test]
    fn engine_ordering_is_unchanged_by_the_two_tier_store(
        decls in proptest::collection::vec(decl_strategy(), 1..25),
        seed in any::<u64>(),
    ) {
        let engine = DependencyEngine::new();
        let root = engine.register_root();
        let mut rng = Lcg(seed);

        let mut ready: Vec<usize> = Vec::new();
        let mut ids = Vec::with_capacity(decls.len());
        for (i, decl) in decls.iter().enumerate() {
            let (id, is_ready) = engine
                .register_task(root, &deps_of(decl), WaitMode::None)
                .expect("live parent");
            if is_ready {
                ready.push(i);
            }
            ids.push(id);
        }

        let mut finish_position = vec![usize::MAX; decls.len()];
        let mut finished = 0usize;
        while finished < decls.len() {
            prop_assert!(!ready.is_empty(), "engine stuck: pending tasks but none ready");
            let pick = ready.swap_remove(rng.next(ready.len()));
            let effects = engine.body_finished(ids[pick]).expect("live task");
            finish_position[pick] = finished;
            finished += 1;
            for newly in effects.ready {
                let pos = ids.iter().position(|id| *id == newly);
                prop_assert!(pos.is_some(), "ready effect for an unknown task");
                ready.push(pos.unwrap());
            }
        }

        // Program order between conflicting accesses survives whatever tier served them.
        for i in 0..decls.len() {
            for j in (i + 1)..decls.len() {
                let conflict = deps_of(&decls[i]).iter().any(|a| {
                    deps_of(&decls[j]).iter().any(|b| {
                        a.region.intersects(&b.region)
                            && (a.access.is_write() || b.access.is_write())
                    })
                });
                if conflict {
                    prop_assert!(
                        finish_position[i] < finish_position[j],
                        "task {} (finished {}) must precede task {} (finished {})",
                        i, finish_position[i], j, finish_position[j]
                    );
                }
            }
        }

        // Every registered access was served by exactly one tier.
        let stats = engine.stats();
        prop_assert_eq!(
            stats.exact_hits + stats.fragmented_updates,
            stats.accesses_registered,
            "tier counters must account for every access (promotions: {})",
            stats.promotions
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Demotion oracle at the engine level: random promote → fragment → coalesce → demote
    /// cycles over disjoint windows. Each cycle writes a window (exact tier), straddles it
    /// (promotion), rewrites the full window (the coalescing write heals the extent, demoting
    /// it back to the exact hash tier) and then rewrites it once more — which **must** be
    /// served as an exact hit: `EngineStats::exact_hits` resumes counting after demotion.
    /// The whole graph must still drain in a random legal order.
    #[test]
    fn demoted_windows_resume_exact_hits(
        cycles in proptest::collection::vec(0u8..6, 1..12),
        seed in any::<u64>(),
    ) {
        let engine = DependencyEngine::new();
        let root = engine.register_root();
        let mut rng = Lcg(seed);
        let mut ready: Vec<usize> = Vec::new();
        let mut ids = Vec::new();

        let register = |region: Region, ready: &mut Vec<usize>, ids: &mut Vec<_>| {
            let deps = [Depend::new(AccessType::InOut, region)];
            let (id, is_ready) =
                engine.register_task(root, &deps, WaitMode::None).expect("live parent");
            if is_ready {
                ready.push(ids.len());
            }
            ids.push(id);
        };

        for &win in &cycles {
            // Stride-2 windows: a straddler of window w stays inside [w*20, w*20+20), so
            // cycles on different windows never interfere with each other's exactness.
            let base = win as usize * 20;
            let window = Region::new(SpaceId(1), base, base + 10);
            let straddler = Region::new(SpaceId(1), base + 5, base + 15);

            // Exact-tier write (ExactNew on the first cycle of a window, a hit afterwards).
            register(window, &mut ready, &mut ids);

            // Straddling write: promotes the window extent to the fragmented tier.
            let promotions_before = engine.stats().promotions;
            register(straddler, &mut ready, &mut ids);
            prop_assert!(engine.stats().promotions > promotions_before,
                "straddling write of window {} did not promote", win);

            // Full-window rewrite: the coalescing write heals the extent and demotes it.
            let demotions_before = engine.stats().demotions;
            register(window, &mut ready, &mut ids);
            prop_assert!(engine.stats().demotions > demotions_before,
                "healing write of window {} did not demote", win);

            // The demoted extent must be served by the exact tier again.
            let exact_before = engine.stats().exact_hits;
            register(window, &mut ready, &mut ids);
            prop_assert_eq!(engine.stats().exact_hits, exact_before + 1,
                "post-demotion write of window {} was not an exact hit", win);
        }

        // Accounting holds after arbitrary cycle interleavings: a demotion is produced by (at
        // most) the coalescing pass of one fragmented-tier update.
        let stats = engine.stats();
        prop_assert!(stats.demotions <= stats.fragmented_updates,
            "demotions ({}) exceed fragmented updates ({})",
            stats.demotions, stats.fragmented_updates);
        prop_assert_eq!(stats.exact_hits + stats.fragmented_updates, stats.accesses_registered,
            "tier counters must account for every access");

        // The graph drains: every task runs, in some random legal order.
        let mut finished = 0usize;
        while finished < ids.len() {
            prop_assert!(!ready.is_empty(), "engine stuck: pending tasks but none ready");
            let pick = ready.swap_remove(rng.next(ready.len()));
            let effects = engine.body_finished(ids[pick]).expect("live task");
            finished += 1;
            for newly in effects.ready {
                let pos = ids.iter().position(|id| *id == newly);
                prop_assert!(pos.is_some(), "ready effect for an unknown task");
                ready.push(pos.unwrap());
            }
        }
    }
}
