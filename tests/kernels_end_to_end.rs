//! Cross-crate integration tests: every kernel variant, several worker counts, stress loads and
//! failure injection.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use weakdep::{Runtime, SharedSlice};
use weakdep_kernels::axpy::{self, AxpyConfig, AxpyVariant};
use weakdep_kernels::gauss_seidel::{self, GsConfig, GsVariant};
use weakdep_kernels::sort_scan::{self, SortScanConfig, SortScanVariant};

#[test]
fn axpy_all_variants_all_worker_counts() {
    let cfg = AxpyConfig { n: 1 << 13, calls: 4, task_size: 1 << 10, alpha: 1.25 };
    for workers in [1, 2, 4] {
        let rt = Runtime::with_workers(workers);
        for variant in AxpyVariant::all() {
            let (_run, result) = axpy::run(&rt, variant, &cfg);
            assert!(
                axpy::verify(&cfg, &result),
                "axpy {} with {workers} workers",
                variant.name()
            );
        }
    }
}

#[test]
fn gauss_seidel_all_variants_all_worker_counts() {
    let cfg = GsConfig { blocks: 3, ts: 8, iterations: 4 };
    for workers in [1, 2, 4] {
        let rt = Runtime::with_workers(workers);
        for variant in GsVariant::all() {
            let (_run, result) = gauss_seidel::run(&rt, variant, &cfg);
            assert!(
                gauss_seidel::verify(&cfg, &result),
                "gauss-seidel {} with {workers} workers",
                variant.name()
            );
        }
    }
}

#[test]
fn sort_scan_both_variants_all_worker_counts() {
    let cfg = SortScanConfig { n: 6_000, ts: 512, seed: 5 };
    for workers in [1, 2, 4] {
        let rt = Runtime::with_workers(workers);
        for variant in SortScanVariant::all() {
            let (_run, result) = sort_scan::run(&rt, variant, &cfg);
            assert!(
                sort_scan::verify(&cfg, &result),
                "sort-scan {} with {workers} workers",
                variant.name()
            );
        }
    }
}

/// Several runs on the same runtime must not interfere (the dependency engine keeps state across
/// `run` calls).
#[test]
fn repeated_kernel_runs_on_one_runtime() {
    let rt = Runtime::with_workers(4);
    let cfg = AxpyConfig { n: 1 << 12, calls: 3, task_size: 512, alpha: 0.5 };
    for _ in 0..5 {
        let (_run, result) = axpy::run(&rt, AxpyVariant::NestWeak, &cfg);
        assert!(axpy::verify(&cfg, &result));
    }
    let gs = GsConfig { blocks: 2, ts: 8, iterations: 2 };
    let (_run, result) = gauss_seidel::run(&rt, GsVariant::FlatDepend, &gs);
    assert!(gauss_seidel::verify(&gs, &result));
}

/// A stress test with tens of thousands of small dependent tasks across nesting levels.
#[test]
fn stress_many_nested_tasks() {
    let rt = Runtime::with_workers(4);
    let outer_count = 64usize;
    let inner_count = 64usize;
    let data = SharedSlice::<u64>::new(outer_count * inner_count);
    let counter = Arc::new(AtomicUsize::new(0));
    let d = data.clone();
    let c = Arc::clone(&counter);
    rt.run(move |ctx| {
        for o in 0..outer_count {
            let d2 = d.clone();
            let c2 = Arc::clone(&c);
            let start = o * inner_count;
            let end = start + inner_count;
            ctx.task()
                .weak_inout(d.region(start..end))
                .weakwait()
                .label("outer")
                .spawn(move |t| {
                    for i in start..end {
                        let d3 = d2.clone();
                        let c3 = Arc::clone(&c2);
                        t.task().inout(d2.region(i..i + 1)).label("inner").spawn(move |ct| {
                            d3.write(ct, i..i + 1)[0] = i as u64;
                            c3.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), outer_count * inner_count);
    let snapshot = data.snapshot();
    for (i, v) in snapshot.iter().enumerate() {
        assert_eq!(*v, i as u64);
    }
    let stats = rt.stats();
    assert_eq!(stats.engine.tasks_registered, 1 + outer_count + outer_count * inner_count);
}

/// A long chain of dependent tasks across two nesting levels (release must cascade promptly and
/// never deadlock).
#[test]
fn long_cross_level_dependency_chain() {
    let rt = Runtime::with_workers(2);
    let links = 400usize;
    let data = SharedSlice::<u64>::new(1);
    let d = data.clone();
    rt.run(move |ctx| {
        for i in 0..links {
            let d2 = d.clone();
            ctx.task()
                .weak_inout(d.region(0..1))
                .weakwait()
                .label("link-outer")
                .spawn(move |t| {
                    let d3 = d2.clone();
                    t.task().inout(d2.region(0..1)).label("link-inner").spawn(move |c| {
                        d3.write(c, 0..1)[0] += i as u64;
                    });
                });
        }
    });
    assert_eq!(data.snapshot()[0], (0..links as u64).sum::<u64>());
}

/// Failure injection: a panicking task must neither hang the runtime nor corrupt later runs.
#[test]
fn panicking_tasks_do_not_poison_the_runtime() {
    let rt = Runtime::with_workers(4);
    for round in 0..3 {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(|ctx| {
                for i in 0..16 {
                    ctx.task().label("maybe-panic").spawn(move |_| {
                        if i == 7 {
                            panic!("injected failure in round {round}");
                        }
                    });
                }
            });
        }));
        assert!(result.is_err(), "the injected panic must surface from run()");
        // The runtime must still work correctly afterwards.
        let cfg = AxpyConfig { n: 2048, calls: 2, task_size: 256, alpha: 2.0 };
        let (_r, out) = axpy::run(&rt, AxpyVariant::FlatDepend, &cfg);
        assert!(axpy::verify(&cfg, &out));
    }
}

/// The runtime statistics are consistent with what the kernels instantiate.
#[test]
fn runtime_statistics_are_consistent() {
    let rt = Runtime::with_workers(2);
    let cfg = AxpyConfig { n: 1 << 12, calls: 2, task_size: 1 << 10, alpha: 1.0 };
    let before = rt.stats().tasks_executed;
    let (run, _result) = axpy::run(&rt, AxpyVariant::NestWeak, &cfg);
    let after = rt.stats().tasks_executed;
    assert_eq!(after - before, run.tasks, "executed tasks must match the kernel's accounting");

    // Release edges are only created when a successor registers while the predecessor's access
    // is still unreleased; with 2 workers the axpy waves can drain before the next call
    // registers, so force the overlap deterministically: the writer spins until the reader's
    // spawn (and therefore its registration) has returned.
    let release_before = rt.stats().engine.release_edges;
    let chain = SharedSlice::<u64>::new(1);
    let reader_spawned = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let c = chain.clone();
    let spawned = std::sync::Arc::clone(&reader_spawned);
    rt.run(move |ctx| {
        let cw = c.clone();
        let gate_writer = std::sync::Arc::clone(&spawned);
        ctx.task().inout(c.region(0..1)).label("gated-writer").spawn(move |t| {
            while !gate_writer.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::yield_now();
            }
            cw.write(t, 0..1)[0] = 5;
        });
        let cr = c.clone();
        ctx.task().input(c.region(0..1)).label("chained-reader").spawn(move |t| {
            assert_eq!(cr.read(t, 0..1)[0], 5);
        });
        spawned.store(true, std::sync::atomic::Ordering::Release);
    });
    assert!(
        rt.stats().engine.release_edges > release_before,
        "a successor registering against an unreleased access must create a release edge"
    );

    // Cross-domain (satisfaction) links are only created when a child registers while its
    // parent's weak access is still unsatisfied, so force that situation deterministically: the
    // producer holds `data` until the weak outer task has instantiated its reader child (a
    // handshake rather than a sleep, so scheduling delays cannot break the ordering).
    let data = SharedSlice::<u64>::new(1);
    let reader_registered = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let d = data.clone();
    let gate = std::sync::Arc::clone(&reader_registered);
    rt.run(move |ctx| {
        let dp = d.clone();
        let gate_producer = std::sync::Arc::clone(&gate);
        ctx.task().inout(d.region(0..1)).label("slow-producer").spawn(move |t| {
            while !gate_producer.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::yield_now();
            }
            dp.write(t, 0..1)[0] = 9;
        });
        let dc = d.clone();
        let gate_outer = std::sync::Arc::clone(&gate);
        ctx.task()
            .weak_input(d.region(0..1))
            .weakwait()
            .label("weak-outer")
            .spawn(move |t| {
                let dr = dc.clone();
                t.task().input(dc.region(0..1)).label("reader").spawn(move |c| {
                    assert_eq!(dr.read(c, 0..1)[0], 9);
                });
                gate_outer.store(true, std::sync::atomic::Ordering::Release);
            });
    });
    assert!(
        rt.stats().engine.satisfaction_edges > 0,
        "weak nesting must create cross-domain links"
    );
}

/// Mixing kernels concurrently in a single run must keep them independent (different data
/// spaces never create dependencies between unrelated kernels).
#[test]
fn unrelated_kernels_share_the_runtime_without_interference() {
    let rt = Runtime::with_workers(4);
    let axpy_cfg = AxpyConfig { n: 1 << 12, calls: 2, task_size: 512, alpha: 3.0 };
    let x = SharedSlice::<f64>::new(axpy_cfg.n);
    let y = SharedSlice::<f64>::new(axpy_cfg.n);
    axpy::initialize(&x, &y);
    let sort_cfg = SortScanConfig { n: 4_096, ts: 256, seed: 123 };
    let sorted_input = SharedSlice::from_vec(sort_scan::generate_input(&sort_cfg));

    // Run both kernels back to back on the same runtime instance.
    axpy::run_on(&rt, AxpyVariant::NestWeak, &axpy_cfg, &x, &y);
    sort_scan::run_on(&rt, SortScanVariant::Weak, &sort_cfg, &sorted_input);

    assert!(axpy::verify(&axpy_cfg, &y.snapshot()));
    assert!(sort_scan::verify(&sort_cfg, &sorted_input.snapshot()));
}
