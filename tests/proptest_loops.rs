//! Property-based equivalence of the work-assisting loop primitives (ISSUE 10): under random
//! problem sizes and chunk grains, [`TaskCtx::for_each`]-based and [`TaskCtx::scan`]-based
//! kernels must be **bitwise-equal** to both the task-spawned decomposition and the
//! sequential oracle, under every [`SchedulingPolicy`] — and the scheduler/assist accounting
//! identities must hold afterwards. The arithmetic is `u64` wrapping addition, which is
//! associative and exact, so "bitwise" is a meaningful bar. Green under `--features
//! sentinel`: the loop views validate the registering task's footprint once at creation.
//!
//! [`TaskCtx::for_each`]: weakdep::TaskCtx::for_each
//! [`TaskCtx::scan`]: weakdep::TaskCtx::scan

use proptest::prelude::*;

use weakdep::{Runtime, RuntimeConfig, SchedulingPolicy, SharedSlice};
use weakdep_kernels::parallel_loops::{
    reduce_assist, reduce_reference, reduce_tasks, scan_assist, scan_reference, scan_tasks,
    LoopConfig,
};

fn input_slice(seed: u64, n: usize) -> SharedSlice<u64> {
    let input = SharedSlice::<u64>::new(n);
    input.init_with(|i| (i as u64).wrapping_add(seed).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    input
}

fn runtime(policy: SchedulingPolicy) -> Runtime {
    Runtime::new(RuntimeConfig::new().workers(2).scheduling_policy(policy))
}

fn check_identities(rt: &Runtime, policy: SchedulingPolicy) -> Result<(), TestCaseError> {
    let stats = rt.stats();
    prop_assert_eq!(
        stats.engine.tasks_registered,
        stats.engine.tasks_deeply_completed,
        "policy {}: every registered task must deeply complete",
        policy.name()
    );
    prop_assert_eq!(
        stats.tasks_executed,
        stats.successor_slot_hits + stats.local_pops + stats.injector_pops + stats.steals,
        "policy {}: scheduler accounting identity violated",
        policy.name()
    );
    prop_assert!(
        stats.assisted_loops <= stats.assist_steals && stats.assist_steals <= stats.assist_chunks,
        "policy {}: assist counter identity violated (loops={} steals={} chunks={})",
        policy.name(),
        stats.assisted_loops,
        stats.assist_steals,
        stats.assist_chunks
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `scan` (assist) == task-spawned scan == sequential oracle, bit for bit, under every
    /// policy.
    #[test]
    fn scan_matches_both_oracles_under_every_policy(
        n in 0usize..700,
        chunk in 1usize..96,
        seed in any::<u64>(),
    ) {
        let cfg = LoopConfig { n, chunk };
        let input = input_slice(seed, n);
        let expected = scan_reference(&input.snapshot());
        for policy in SchedulingPolicy::all() {
            let rt = runtime(policy);
            let out_assist = SharedSlice::<u64>::new(n);
            scan_assist(&rt, &cfg, &input, &out_assist);
            prop_assert_eq!(
                out_assist.snapshot(),
                expected.clone(),
                "assist scan diverged from the sequential oracle under {}",
                policy.name()
            );
            let out_tasks = SharedSlice::<u64>::new(n);
            scan_tasks(&rt, &cfg, &input, &out_tasks);
            prop_assert_eq!(
                out_tasks.snapshot(),
                expected.clone(),
                "task-spawned scan diverged from the sequential oracle under {}",
                policy.name()
            );
            check_identities(&rt, policy)?;
        }
    }

    /// `for_each` (assist reduction) == task-spawned reduction == sequential oracle, under
    /// every policy.
    #[test]
    fn for_each_reduction_matches_both_oracles_under_every_policy(
        n in 0usize..900,
        chunk in 1usize..128,
        seed in any::<u64>(),
    ) {
        let cfg = LoopConfig { n, chunk };
        let input = input_slice(seed, n);
        let expected = reduce_reference(&input.snapshot());
        for policy in SchedulingPolicy::all() {
            let rt = runtime(policy);
            let (_, via_assist) = reduce_assist(&rt, &cfg, &input);
            prop_assert_eq!(
                via_assist, expected,
                "assist reduction diverged from the sequential oracle under {}",
                policy.name()
            );
            let (_, via_tasks) = reduce_tasks(&rt, &cfg, &input);
            prop_assert_eq!(
                via_tasks, expected,
                "task-spawned reduction diverged from the sequential oracle under {}",
                policy.name()
            );
            check_identities(&rt, policy)?;
        }
    }
}
