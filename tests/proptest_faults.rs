//! Property-based tests of the fault-tolerant job lifecycle (ISSUE 9): random K-job mixes
//! where a random subset of jobs is fault-injected — a panicking task, an unmeetable
//! deadline, or an explicit cancel — on one shared service.
//!
//! * **Isolation under faults** — every *clean* job's output equals the output of the same
//!   graph on a fresh isolated runtime: a neighbour's panic, deadline abort or cancellation
//!   must not perturb anyone else's result.
//! * **Typed outcomes** — every faulted job's `wait_result()` reports exactly the injected
//!   fault: `Panicked` (payload preserved), `DeadlineExceeded`, or `Cancelled`.
//! * **Drain under faults** — every job, faulted or not, fully drains: per-job
//!   `registered == deeply_completed` and `executed + skipped == registered`, the aggregate
//!   engine accounting balances, and the service ends at its capacity plateau.
//!
//! The injection here is *manual* (a body that calls `panic!`, a deadline the body cannot
//! meet, a `cancel()` from the test thread), so the suite is feature-free and runs both in
//! plain release CI and under `--features sentinel`; the seeded `FaultPlan` machinery has its
//! own unit tests and the `chaos` bench bin.

use proptest::prelude::*;
use std::time::Duration;

use weakdep::{
    JobError, JobOptions, PanicPolicy, Runtime, RuntimeConfig, SharedSlice, TaskCtx,
};

const CELLS: usize = 32;
const BLOCK: usize = 8;

/// Ceiling on any single wait: a job that cannot finish under injection is itself a bug.
const NO_HANG: Duration = Duration::from_secs(60);

/// One randomly generated flat task of a job's graph (same scheme as `proptest_multijob`).
#[derive(Clone, Debug)]
struct Decl {
    accesses: Vec<(u8, u8)>, // (block index, access-type selector)
    wait_after: bool,
    salt: u64,
}

fn decl_strategy() -> impl Strategy<Value = Decl> {
    (proptest::collection::vec((0u8..4, 0u8..3), 1..3), 0u8..5, any::<u64>()).prop_map(
        |(accesses, wait_sel, salt)| Decl { accesses, wait_after: wait_sel == 0, salt },
    )
}

/// Which fault, if any, the harness injects into a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    None,
    /// One extra task panics; the rest of the graph is subject to the panic policy.
    Panic(PanicPolicy),
    /// A deadline far below the body's serial sleep time.
    Deadline,
    /// `cancel()` from the submitter right after submission.
    Cancel,
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    (0u8..8).prop_map(|sel| match sel {
        0 => Fault::Panic(PanicPolicy::FailFast),
        1 => Fault::Panic(PanicPolicy::RunToCompletion),
        2 => Fault::Deadline,
        3 => Fault::Cancel,
        _ => Fault::None,
    })
}

fn range_of((block, _ty): (u8, u8)) -> std::ops::Range<usize> {
    let start = block as usize * BLOCK;
    start..start + BLOCK
}

fn apply_body(ctx: &TaskCtx<'_>, data: &SharedSlice<u64>, accesses: &[(u8, u8)], salt: u64) {
    let mut acc = salt;
    for &a in accesses {
        if a.1 != 1 {
            for v in data.read(ctx, range_of(a)) {
                acc = acc.wrapping_mul(31).wrapping_add(*v);
            }
        }
    }
    for &a in accesses {
        match a.1 {
            1 => {
                for (i, v) in data.write(ctx, range_of(a)).iter_mut().enumerate() {
                    *v = acc.wrapping_add(i as u64);
                }
            }
            2 => {
                for v in data.write(ctx, range_of(a)).iter_mut() {
                    *v = v.wrapping_mul(3).wrapping_add(acc);
                }
            }
            _ => {}
        }
    }
}

fn spawn_decl(ctx: &TaskCtx<'_>, data: &SharedSlice<u64>, decl: &Decl) {
    use weakdep::AccessType;
    let strong = |ty: u8| match ty {
        0 => AccessType::In,
        1 => AccessType::Out,
        _ => AccessType::InOut,
    };
    let mut builder = ctx.task().label("job-task");
    for &a in &decl.accesses {
        builder = builder.depend(strong(a.1), data.region(range_of(a)));
    }
    let inner = decl.clone();
    let d = data.clone();
    builder.spawn(move |t| apply_body(t, &d, &inner.accesses, inner.salt));
    if decl.wait_after {
        ctx.taskwait();
    }
}

/// The reference: the same graph on a fresh, isolated, fault-free runtime.
fn run_isolated(decls: &[Decl]) -> Vec<u64> {
    let rt = Runtime::new(RuntimeConfig::new().workers(2));
    let data = SharedSlice::<u64>::filled(CELLS, 1);
    let d = data.clone();
    let decls = decls.to_vec();
    rt.run(move |ctx| {
        for decl in &decls {
            spawn_decl(ctx, &d, decl);
        }
    });
    data.snapshot()
}

/// Swallows the panic printouts of the faults this suite injects on purpose.
fn install_panic_filter() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.starts_with("proptest injected"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

/// Blocks (bounded by [`NO_HANG`]) for the job's typed outcome, then checks that the job —
/// whatever its fate — fully drained.
fn wait_and_check_drain(
    handle: &weakdep::JobHandle<Vec<u64>>,
) -> Result<Option<Vec<u64>>, JobError> {
    let outcome = handle
        .wait_timeout(NO_HANG)
        .unwrap_or_else(|| panic!("job {} hung past {NO_HANG:?} under injection", handle.id()));
    let stats = handle.stats();
    assert!(stats.finished);
    assert_eq!(
        stats.tasks_registered, stats.tasks_deeply_completed,
        "job {}: registered != deeply_completed after finishing",
        handle.id()
    );
    assert_eq!(
        stats.tasks_executed + stats.tasks_skipped,
        stats.tasks_registered,
        "job {}: every dispatched body must either execute or be skipped",
        handle.id()
    );
    outcome
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// K concurrent jobs, a random subset fault-injected: clean jobs match their isolated
    /// oracle, faulted jobs report exactly the injected `JobError`, everything drains.
    #[test]
    fn faulted_neighbours_never_perturb_clean_jobs(
        jobs in proptest::collection::vec(
            (proptest::collection::vec(decl_strategy(), 1..8), fault_strategy()),
            3..6,
        ),
    ) {
        install_panic_filter();
        let rt = Runtime::new(RuntimeConfig::new().workers(4));
        let handles: Vec<_> = jobs
            .iter()
            .map(|(decls, fault)| {
                let decls = decls.clone();
                match *fault {
                    Fault::None => rt.submit(move |ctx| {
                        let data = SharedSlice::<u64>::filled(CELLS, 1);
                        for decl in &decls {
                            spawn_decl(ctx, &data, decl);
                        }
                        ctx.taskwait();
                        data.snapshot()
                    }),
                    Fault::Panic(policy) => rt.submit_with(
                        JobOptions::new().panic_policy(policy).label("faulted"),
                        move |ctx| {
                            let data = SharedSlice::<u64>::filled(CELLS, 1);
                            // The injected failure, then the rest of the graph: under
                            // fail-fast the tail may be skipped, under run-to-completion it
                            // executes — either way the job must drain and report the panic.
                            ctx.task().label("injected-panic").spawn(|_| {
                                panic!("proptest injected panic");
                            });
                            for decl in &decls {
                                spawn_decl(ctx, &data, decl);
                            }
                            ctx.taskwait();
                            data.snapshot()
                        },
                    ),
                    Fault::Deadline => rt.submit_with(
                        JobOptions::new()
                            .deadline(Duration::from_millis(2))
                            .label("over-deadline"),
                        move |ctx| {
                            // A serial chain of sleeps (inout over one cell) that cannot
                            // finish within the 2 ms deadline.
                            let data = SharedSlice::<u64>::filled(1, 0);
                            for _ in 0..20 {
                                let d = data.clone();
                                ctx.task().inout(data.region(0..1)).label("slow-link").spawn(
                                    move |t| {
                                        std::thread::sleep(Duration::from_millis(5));
                                        d.write(t, 0..1)[0] += 1;
                                    },
                                );
                            }
                            ctx.taskwait();
                            data.snapshot()
                        },
                    ),
                    Fault::Cancel => rt.submit(move |ctx| {
                        let data = SharedSlice::<u64>::filled(CELLS, 1);
                        for decl in &decls {
                            spawn_decl(ctx, &data, decl);
                        }
                        ctx.taskwait();
                        data.snapshot()
                    }),
                }
            })
            .collect();
        // Inject the cancels only after every job is submitted, so cancelled jobs' drain
        // overlaps the clean jobs' execution (the interesting interleaving).
        for ((_, fault), handle) in jobs.iter().zip(&handles) {
            if *fault == Fault::Cancel {
                handle.cancel();
            }
        }

        for ((decls, fault), handle) in jobs.iter().zip(&handles) {
            let outcome = wait_and_check_drain(handle);
            match fault {
                Fault::None => {
                    let snapshot = match outcome {
                        Ok(Some(snapshot)) => snapshot,
                        other => {
                            return Err(TestCaseError::fail(format!(
                                "clean job reported {other:?} instead of its value"
                            )))
                        }
                    };
                    prop_assert_eq!(
                        snapshot,
                        run_isolated(decls),
                        "a clean job diverged from its isolated run while neighbours faulted"
                    );
                }
                Fault::Panic(_) => match outcome {
                    Err(JobError::Panicked { message, payload }) => {
                        prop_assert!(
                            message.contains("proptest injected panic"),
                            "wrong panic message: {}", message
                        );
                        // The original payload survives for `resume_unwind` callers.
                        prop_assert_eq!(
                            payload.downcast_ref::<&str>().copied(),
                            Some("proptest injected panic")
                        );
                    }
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "panicking job reported {other:?}"
                        )))
                    }
                },
                Fault::Deadline => match outcome {
                    Err(JobError::DeadlineExceeded) => {}
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "over-deadline job reported {other:?}"
                        )))
                    }
                },
                Fault::Cancel => match outcome {
                    Err(JobError::Cancelled) => {}
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "cancelled job reported {other:?}"
                        )))
                    }
                },
            }
        }

        // Service-wide: everything drained, accounting balances, capacity is at plateau.
        let stats = rt.stats();
        prop_assert_eq!(stats.jobs_submitted, jobs.len());
        prop_assert_eq!(stats.jobs_completed, jobs.len(), "faulted jobs must still drain");
        prop_assert_eq!(
            stats.engine.tasks_registered, stats.engine.tasks_deeply_completed,
            "aggregate accounting must balance under injection"
        );
        let capacity = rt.capacity();
        prop_assert_eq!(capacity.live_tasks, 0);
        prop_assert_eq!(capacity.live_jobs, 0);
    }
}
