//! Integration tests of the region-conflict race sentinel (`crates/sentinel`, wired into the
//! runtime behind the `sentinel` feature — run with `cargo test --features sentinel`).
//!
//! Two kinds of test live here:
//!
//! * **Positive**: real nested/weak-dependency workloads run clean under the sentinel — the
//!   shadow-table checks must produce no false positives (ancestor exemption, weak-entry
//!   exclusion, retire-before-successor-dispatch ordering).
//! * **Mutation regressions**: deliberately seeded scheduler bugs must be *caught*. The
//!   flagship is the §VIII-A wave-ordering mutation (`RuntimeConfig::seed_wave_ordering_bug`),
//!   which re-introduces the bug class fixed in PR 5 — `spawn_batch` waves registered with
//!   their declared dependencies dropped, so conflicting siblings dispatch concurrently.

#![cfg(feature = "sentinel")]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use weakdep::{Runtime, RuntimeConfig, SharedSlice, TaskSpec};

/// Bounded rendezvous for the mutation tests: announce arrival, then spin until `expected`
/// parties arrived or the deadline passes. Unlike `std::sync::Barrier`, this cannot hang when a
/// party never shows up — which is exactly what happens when the sentinel (correctly) kills a
/// sibling at task start, before its body runs.
fn rendezvous(arrived: &AtomicUsize, expected: usize, deadline: Duration) {
    arrived.fetch_add(1, Ordering::SeqCst);
    let start = Instant::now();
    while arrived.load(Ordering::SeqCst) < expected && start.elapsed() < deadline {
        std::thread::yield_now();
    }
}

// ---------------------------------------------------------------------------------------------
// Positive: correct programs stay clean under the sentinel.
// ---------------------------------------------------------------------------------------------

/// The crate's flagship pattern — weak outer deps, strong inner blocks, weakwait — must not
/// trip the sentinel: children overlap their ancestors by design, and the weak entries never
/// hold regions against anyone.
#[test]
fn nested_weak_workload_is_clean() {
    let rt = Runtime::with_workers(4);
    let data = SharedSlice::<u64>::filled(1024, 1);
    for _ in 0..8 {
        let outer_data = data.clone();
        rt.run(move |ctx| {
            let n = outer_data.len();
            let inner_data = outer_data.clone();
            ctx.task()
                .weak_inout(outer_data.region(0..n))
                .weakwait()
                .label("outer")
                .spawn(move |outer| {
                    for start in (0..n).step_by(256) {
                        let end = start + 256;
                        let block = inner_data.clone();
                        outer
                            .task()
                            .inout(inner_data.region(start..end))
                            .label("block")
                            .spawn(move |t| {
                                for v in block.write(t, start..end) {
                                    *v += 1;
                                }
                            });
                    }
                });
        });
    }
    assert!(data.snapshot().iter().all(|&v| v == 9));
}

/// A chain of dependent writers over one region: the engine serialises them, so the sentinel
/// must never see two of them running at once — across many repetitions.
#[test]
fn dependent_chain_is_clean() {
    let rt = Runtime::with_workers(4);
    let data = SharedSlice::<u64>::filled(64, 0);
    for _ in 0..50 {
        let d = data.clone();
        rt.run(move |ctx| {
            for _ in 0..16 {
                let dc = d.clone();
                ctx.task().inout(d.region(0..64)).label("link").spawn(move |t| {
                    for v in dc.write(t, 0..64) {
                        *v += 1;
                    }
                });
            }
        });
    }
    assert!(data.snapshot().iter().all(|&v| v == 16 * 50));
}

/// Multi-tenant service: concurrent jobs whose tasks declare the **same** footprints (each
/// over its own buffer) must stay clean — the shadow table is job-qualified, so cross-job
/// overlap is never compared. The rendezvous forces the jobs' writers to genuinely overlap in
/// time, which without the job qualifier would look exactly like the flagged races below.
#[test]
fn concurrent_jobs_with_identical_footprints_are_clean() {
    let rt = Runtime::with_workers(4);
    let arrived = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let a = Arc::clone(&arrived);
            rt.submit(move |ctx| {
                let data = SharedSlice::<u64>::filled(64, 0);
                let d = data.clone();
                let a2 = Arc::clone(&a);
                ctx.task().inout(data.region(0..64)).label("tenant-writer").spawn(move |t| {
                    // Hold the footprint while the other jobs' identically-declared writers
                    // start: only the job qualifier keeps this clean.
                    rendezvous(&a2, 3, Duration::from_secs(2));
                    for v in d.write(t, 0..64) {
                        *v += 1;
                    }
                });
                ctx.taskwait();
                data.snapshot()[0]
            })
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.wait(), Some(1));
    }
    assert_eq!(arrived.load(Ordering::SeqCst), 3, "the tenants' writers must have overlapped");
}

// ---------------------------------------------------------------------------------------------
// Mutation regression: the seeded §VIII-A wave-ordering bug must be caught.
// ---------------------------------------------------------------------------------------------

/// With `seed_wave_ordering_bug`, a `spawn_batch` wave of conflicting writers is registered
/// dependency-free: the engine dispatches all of them concurrently, and the sentinel must
/// report the write/write region conflict the moment the second writer starts while the first
/// is still running. The first writer's body spins in a bounded rendezvous so the overlap
/// window is seconds wide, not microseconds (`run` re-raises the captured conflict panic).
#[test]
#[should_panic(expected = "sentinel: region conflict")]
fn wave_ordering_mutation_is_caught() {
    let rt = Runtime::new(RuntimeConfig::new().workers(4).seed_wave_ordering_bug(true));
    let data = SharedSlice::<u64>::filled(64, 0);
    let arrived = Arc::new(AtomicUsize::new(0));
    rt.run(move |ctx| {
        let specs: Vec<TaskSpec> = (0..2)
            .map(|_| {
                let a = Arc::clone(&arrived);
                ctx.task()
                    .inout(data.region(0..64))
                    .label("conflicting-writer")
                    .stage(move |_t| {
                        // Under the seeded bug the sibling is flagged at *start* and its body
                        // never runs, so `arrived` never reaches 2 — the deadline keeps the
                        // survivor (and the test) finite.
                        rendezvous(&a, 2, Duration::from_secs(2));
                    })
            })
            .collect();
        ctx.spawn_batch(specs);
    });
}

/// Same seeded bug, single-worker edition: even when the conflicting siblings can never
/// actually overlap in time (one worker), the sentinel catches the mis-schedule the moment the
/// second writer starts while the first is still *registered* as running — only if they truly
/// interleave. With one worker they run back-to-back and retire in between, so this documents
/// the sentinel's concurrency-witness semantics: it flags overlap, not ordering. The program
/// must therefore complete (with a possibly-racy sum, which we do not assert).
#[test]
fn wave_ordering_mutation_single_worker_completes() {
    let rt = Runtime::new(RuntimeConfig::new().workers(1).seed_wave_ordering_bug(true));
    let data = SharedSlice::<u64>::filled(8, 0);
    let hits = Arc::new(AtomicUsize::new(0));
    let h = Arc::clone(&hits);
    rt.run(move |ctx| {
        let specs: Vec<TaskSpec> = (0..4)
            .map(|_| {
                let h2 = Arc::clone(&h);
                ctx.task()
                    .inout(data.region(0..8))
                    .label("serial-writer")
                    .stage(move |_t| {
                        h2.fetch_add(1, Ordering::SeqCst);
                    })
            })
            .collect();
        ctx.spawn_batch(specs);
    });
    assert_eq!(hits.load(Ordering::SeqCst), 4);
}

// ---------------------------------------------------------------------------------------------
// Out-of-footprint accesses: the data-layer instrumentation.
// ---------------------------------------------------------------------------------------------

/// Accessing a region after `release`-ing it must panic: the static footprint assert cannot
/// catch this (the dependency *was* declared); the sentinel's live-footprint check does.
#[test]
#[should_panic(expected = "outside its live declared strong footprint")]
fn use_after_release_is_caught() {
    let rt = Runtime::with_workers(2);
    let data = SharedSlice::<u64>::filled(64, 0);
    rt.run(move |ctx| {
        let d = data.clone();
        ctx.task().inout(data.region(0..64)).label("releaser").spawn(move |t| {
            d.write(t, 0..32)[0] = 1;
            t.release(d.region(0..32));
            // The released half is no longer ours.
            d.write(t, 0..32)[0] = 2;
        });
    });
}

/// A `footprint_hint` is visible to the sentinel as a strong claim, so two concurrent tasks
/// coordinating *only* through hints (no dependencies — the flat-taskwait pattern) are flagged
/// when their hinted write regions overlap. The bounded rendezvous keeps the first writer's
/// body alive across the second's start.
#[test]
#[should_panic(expected = "sentinel: region conflict")]
fn overlapping_footprint_hints_without_deps_are_caught() {
    let rt = Runtime::with_workers(2);
    let data = SharedSlice::<u64>::filled(64, 0);
    let arrived = Arc::new(AtomicUsize::new(0));
    rt.run(move |ctx| {
        for _ in 0..2 {
            let a = Arc::clone(&arrived);
            ctx.task()
                .footprint_hint(data.region(0..64), true)
                .label("hinted-writer")
                .spawn(move |_t| {
                    rendezvous(&a, 2, Duration::from_secs(2));
                });
        }
    });
}
