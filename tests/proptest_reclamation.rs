//! Property-based tests of the id-retirement protocol: under randomly shaped dependency graphs,
//! random wait modes and random (legal) completion interleavings, recycled task-table slots must
//! never alias — a stale `TaskId` of a completed task always yields the defined `StaleTaskId`
//! error, and capacity plateaus instead of tracking the total task count.

use proptest::prelude::*;

use weakdep::core::{DependencyEngine, StaleTaskId, TaskId};
use weakdep::{AccessType, Depend, Region, SpaceId, WaitMode};

/// One randomly generated flat task: 1–3 accesses over a small region pool, any wait mode.
#[derive(Clone, Debug)]
struct Decl {
    accesses: Vec<(u8, u8)>, // (region index, access-type selector)
    mode: u8,
}

fn decl_strategy() -> impl Strategy<Value = Decl> {
    (proptest::collection::vec((0u8..6, 0u8..4), 1..4), 0u8..3)
        .prop_map(|(accesses, mode)| Decl { accesses, mode })
}

fn region(idx: u8) -> Region {
    let start = idx as usize * 10;
    Region::new(SpaceId(1), start, start + 10)
}

fn deps_of(decl: &Decl) -> Vec<Depend> {
    decl.accesses
        .iter()
        .map(|&(r, a)| {
            let access = match a {
                0 => AccessType::In,
                1 => AccessType::Out,
                2 => AccessType::InOut,
                _ => AccessType::WeakInOut,
            };
            Depend::new(access, region(r))
        })
        .collect()
}

fn mode_of(decl: &Decl) -> WaitMode {
    match decl.mode {
        0 => WaitMode::None,
        1 => WaitMode::Wait,
        _ => WaitMode::WeakWait,
    }
}

/// Deterministic pseudo-random picker (the interleaving source), seeded by proptest.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Several rounds of spawn-everything / finish-in-random-legal-order through one engine:
    /// after a round drains, every id from it (and every earlier round) is stale and stays
    /// stale — slot reuse in later rounds must never make a dead id answer again.
    #[test]
    fn recycled_slots_never_alias_under_random_interleavings(
        rounds in proptest::collection::vec(
            proptest::collection::vec(decl_strategy(), 1..12),
            1..4,
        ),
        seed in any::<u64>(),
    ) {
        let engine = DependencyEngine::new();
        let root = engine.register_root();
        let mut rng = Lcg(seed);
        let mut dead: Vec<TaskId> = Vec::new();

        for round in &rounds {
            // Spawn the whole round, tracking readiness.
            let mut ready: Vec<TaskId> = Vec::new();
            let mut pending: Vec<TaskId> = Vec::new();
            for decl in round {
                let (id, is_ready) = engine
                    .register_task(root, &deps_of(decl), mode_of(decl))
                    .expect("live parent");
                // A live id must always answer the typed query.
                prop_assert_eq!(engine.try_is_deeply_completed(id), Ok(false));
                if is_ready { ready.push(id) } else { pending.push(id) }
            }
            // Finish in a random legal order until the round drains.
            let mut finished = 0usize;
            while finished < round.len() {
                prop_assert!(!ready.is_empty(), "engine stuck: pending tasks but none ready");
                let pick = rng.next(ready.len());
                let id = ready.swap_remove(pick);
                let effects = engine.body_finished(id).expect("live task");
                finished += 1;
                for newly in effects.ready {
                    let pos = pending.iter().position(|p| *p == newly);
                    prop_assert!(pos.is_some(), "ready effect for an unknown task");
                    pending.swap_remove(pos.unwrap());
                    ready.push(newly);
                }
                dead.push(id);
            }
            // Everything that ever completed — this round and all earlier ones, whose slots may
            // since have been recycled — must now be stale, never aliased.
            for &id in &dead {
                prop_assert_eq!(engine.try_is_deeply_completed(id), Err(StaleTaskId(id)));
                prop_assert_eq!(engine.try_live_children(id), Err(StaleTaskId(id)));
                // The untyped conveniences keep their documented post-retirement answers.
                prop_assert!(engine.is_deeply_completed(id));
                prop_assert_eq!(engine.live_children(id), 0);
            }
        }

        let total: usize = rounds.iter().map(Vec::len).sum();
        let stats = engine.stats();
        prop_assert_eq!(stats.tasks_registered, total + 1); // + root
        prop_assert_eq!(stats.tasks_retired, total, "every finished task must retire");
        // Capacity plateaus at the per-round high-water mark, not the running total.
        prop_assert!(
            engine.table_capacity() <= 12 + 4,
            "table capacity {} exceeds the live high-water bound", engine.table_capacity()
        );
    }
}
