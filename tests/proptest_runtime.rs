//! Property-based tests of the runtime: random task graphs, executed on the real multi-threaded
//! runtime, must respect every declared dependency and produce the same data as a sequential
//! execution of the same program order.

use proptest::prelude::*;
use std::sync::Arc;

use weakdep::{AccessType, Runtime, RuntimeConfig, SharedSlice};
use weakdep_trace::TraceCollector;

/// One randomly generated task declaration: which 8-byte cells it reads and which it writes.
#[derive(Clone, Debug)]
struct TaskDecl {
    reads: Vec<usize>,
    writes: Vec<usize>,
}

const CELLS: usize = 8;

fn task_decl_strategy() -> impl Strategy<Value = TaskDecl> {
    (
        proptest::collection::vec(0..CELLS, 0..3),
        proptest::collection::vec(0..CELLS, 1..3),
    )
        .prop_map(|(reads, writes)| TaskDecl { reads, writes })
}

fn conflicts(a: &TaskDecl, b: &TaskDecl) -> bool {
    let hits = |xs: &[usize], ys: &[usize]| xs.iter().any(|x| ys.contains(x));
    hits(&a.writes, &b.writes) || hits(&a.writes, &b.reads) || hits(&a.reads, &b.writes)
}

/// Sequential model: every task adds its (1-based) index to each cell it writes.
fn sequential_model(decls: &[TaskDecl]) -> Vec<u64> {
    let mut cells = vec![0u64; CELLS];
    for (idx, decl) in decls.iter().enumerate() {
        for &w in &decl.writes {
            cells[w] += idx as u64 + 1;
        }
    }
    cells
}

fn run_flat(decls: &[TaskDecl], workers: usize) -> (Vec<u64>, Vec<weakdep_trace::TraceEvent>, Vec<&'static str>) {
    // Labels must be 'static: index into a fixed table (graphs are capped at 24 tasks).
    const LABELS: [&str; 24] = [
        "t00", "t01", "t02", "t03", "t04", "t05", "t06", "t07", "t08", "t09", "t10", "t11",
        "t12", "t13", "t14", "t15", "t16", "t17", "t18", "t19", "t20", "t21", "t22", "t23",
    ];
    let trace = TraceCollector::shared();
    let rt = Runtime::new(RuntimeConfig::new().workers(workers).observer(trace.clone()));
    let data = SharedSlice::<u64>::new(CELLS);
    let decls_owned: Vec<TaskDecl> = decls.to_vec();
    let d = data.clone();
    rt.run(move |ctx| {
        for (idx, decl) in decls_owned.iter().enumerate() {
            let mut builder = ctx.task().label(LABELS[idx]);
            for &r in &decl.reads {
                builder = builder.depend(AccessType::In, d.region(r..r + 1));
            }
            for &w in &decl.writes {
                builder = builder.depend(AccessType::InOut, d.region(w..w + 1));
            }
            let d2 = d.clone();
            let writes = decl.writes.clone();
            let reads = decl.reads.clone();
            builder.spawn(move |t| {
                for &r in &reads {
                    std::hint::black_box(d2.read(t, r..r + 1)[0]);
                }
                for &w in &writes {
                    d2.write(t, w..w + 1)[0] += idx as u64 + 1;
                }
            });
        }
    });
    (data.snapshot(), trace.events(), LABELS.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random flat graphs: the final data matches the sequential model and conflicting tasks
    /// never overlap in time and finish in program order.
    #[test]
    fn flat_graphs_respect_program_order(
        decls in proptest::collection::vec(task_decl_strategy(), 1..24),
        workers in 1usize..5,
    ) {
        let (cells, events, labels) = run_flat(&decls, workers);
        prop_assert_eq!(cells, sequential_model(&decls));
        prop_assert_eq!(events.len(), decls.len());
        // Trace-level ordering check.
        let find = |label: &str| events.iter().find(|e| e.label == label).unwrap();
        for i in 0..decls.len() {
            for j in (i + 1)..decls.len() {
                if conflicts(&decls[i], &decls[j]) {
                    let ei = find(labels[i]);
                    let ej = find(labels[j]);
                    prop_assert!(
                        ei.end_ns <= ej.start_ns,
                        "conflicting tasks {} and {} overlapped ({}..{} vs {}..{})",
                        i, j, ei.start_ns, ei.end_ns, ej.start_ns, ej.end_ns
                    );
                }
            }
        }
    }

    /// The same random graphs, but every task is wrapped in an outer task with weak accesses and
    /// weakwait (two-level nesting): the result must still match the sequential model — the
    /// "single dependency domain" equivalence of §VI.
    #[test]
    fn nested_weak_graphs_match_sequential_model(
        decls in proptest::collection::vec(task_decl_strategy(), 1..16),
        workers in 1usize..5,
    ) {
        let rt = Runtime::with_workers(workers);
        let data = SharedSlice::<u64>::new(CELLS);
        let decls_owned = decls.clone();
        let d = data.clone();
        rt.run(move |ctx| {
            for (idx, decl) in decls_owned.iter().enumerate() {
                // Outer task: weak accesses over everything the inner task touches.
                let mut outer = ctx.task().label("outer").weakwait();
                for &r in &decl.reads {
                    outer = outer.depend(AccessType::WeakIn, d.region(r..r + 1));
                }
                for &w in &decl.writes {
                    outer = outer.depend(AccessType::WeakInOut, d.region(w..w + 1));
                }
                let d2 = d.clone();
                let decl = decl.clone();
                outer.spawn(move |t| {
                    let mut inner = t.task().label("inner");
                    for &r in &decl.reads {
                        inner = inner.depend(AccessType::In, d2.region(r..r + 1));
                    }
                    for &w in &decl.writes {
                        inner = inner.depend(AccessType::InOut, d2.region(w..w + 1));
                    }
                    let d3 = d2.clone();
                    inner.spawn(move |c| {
                        for &r in &decl.reads {
                            std::hint::black_box(d3.read(c, r..r + 1)[0]);
                        }
                        for &w in &decl.writes {
                            d3.write(c, w..w + 1)[0] += idx as u64 + 1;
                        }
                    });
                });
            }
        });
        prop_assert_eq!(data.snapshot(), sequential_model(&decls));
    }

    /// Randomly sized axpy problems match the sequential reference in every variant.
    #[test]
    fn axpy_random_sizes_match_reference(
        n in 256usize..6_000,
        task_size in 64usize..1_024,
        calls in 1usize..5,
        workers in 1usize..5,
    ) {
        use weakdep_kernels::axpy::{self, AxpyConfig, AxpyVariant};
        let cfg = AxpyConfig { n, calls, task_size, alpha: 1.5 };
        let rt = Runtime::with_workers(workers);
        for variant in [AxpyVariant::NestWeak, AxpyVariant::NestWeakRelease, AxpyVariant::FlatDepend] {
            let (_run, result) = axpy::run(&rt, variant, &cfg);
            prop_assert!(axpy::verify(&cfg, &result), "variant {}", variant.name());
        }
    }

    /// Random quicksort + prefix-sum instances match the reference in both variants.
    #[test]
    fn sort_scan_random_instances_match_reference(
        n in 1usize..5_000,
        ts in 16usize..512,
        seed in any::<u64>(),
        workers in 1usize..5,
    ) {
        use weakdep_kernels::sort_scan::{self, SortScanConfig, SortScanVariant};
        let cfg = SortScanConfig { n, ts, seed };
        let rt = Runtime::with_workers(workers);
        for variant in SortScanVariant::all() {
            let (_run, result) = sort_scan::run(&rt, variant, &cfg);
            prop_assert!(sort_scan::verify(&cfg, &result), "variant {}", variant.name());
        }
    }
}

/// Non-proptest sanity check used to keep the helper functions honest.
#[test]
fn sequential_model_accumulates_indices() {
    let decls = vec![
        TaskDecl { reads: vec![], writes: vec![0, 1] },
        TaskDecl { reads: vec![0], writes: vec![1] },
    ];
    assert_eq!(sequential_model(&decls)[0], 1);
    assert_eq!(sequential_model(&decls)[1], 3);
    assert!(conflicts(&decls[0], &decls[1]));
    let _ = Arc::new(0);
}
